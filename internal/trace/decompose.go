package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is a closed interval reconstructed from recorded events.
type Span struct {
	Kind   Kind
	Worker string
	Task   int
	Iter   int
	Start  time.Duration
	Dur    time.Duration
}

// Spans reconstructs the closed spans of an event stream: complete
// ('X') events map directly, 'B'/'E' pairs are matched by ID. Begins
// without a matching end (a span still open when recording stopped, or
// whose end was dropped by ring overflow) are discarded.
func Spans(events []Event) []Span {
	var out []Span
	open := make(map[uint64]Event)
	for _, ev := range events {
		switch ev.Ph {
		case 'X':
			out = append(out, Span{
				Kind: ev.Kind, Worker: ev.Worker, Task: ev.Task,
				Iter: ev.Iter, Start: ev.Time, Dur: ev.Dur,
			})
		case 'B':
			open[ev.ID] = ev
		case 'E':
			b, ok := open[ev.ID]
			if !ok {
				continue
			}
			delete(open, ev.ID)
			d := ev.Time - b.Time
			if d < 0 {
				d = 0
			}
			out = append(out, Span{
				Kind: b.Kind, Worker: b.Worker, Task: b.Task,
				Iter: b.Iter, Start: b.Time, Dur: d,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// The four factors of the paper's Fig-10 decomposition. When spans of
// different factors overlap (a shuffle send inside a map span, compute
// streaming inside a wait window), the higher-priority factor wins the
// overlap, so each instant of a task pair's timeline is counted once.
const (
	factorNone = iota
	factorSyncWait
	factorCompute
	factorShuffle
	factorInit
	numFactors
)

func factorOf(k Kind) int {
	switch k {
	case SpanRunInit, SpanLoad, SpanJobInit, SpanFinal:
		return factorInit
	case SpanShuffle, SpanStateSend, SpanShuffleWave:
		return factorShuffle
	case SpanMap, SpanSortGroup, SpanReduce, SpanMapWave, SpanReduceWave:
		return factorCompute
	case SpanWait, SpanBarrier:
		return factorSyncWait
	}
	return factorNone
}

// IterFactors is one iteration's share of each factor. The factor sums
// are averaged across task pairs (pairs run concurrently, so the
// average is the per-pair time the paper's figures plot); master-level
// costs (one-time init, final output) are charged at full value.
type IterFactors struct {
	Iter     int
	Wall     time.Duration // iteration window length on the master clock
	Init     time.Duration
	Shuffle  time.Duration
	SyncWait time.Duration
	Compute  time.Duration
}

func (f *IterFactors) add(factor int, d time.Duration) {
	switch factor {
	case factorInit:
		f.Init += d
	case factorShuffle:
		f.Shuffle += d
	case factorSyncWait:
		f.SyncWait += d
	case factorCompute:
		f.Compute += d
	}
}

// Covered is the total attributed time of the iteration.
func (f IterFactors) Covered() time.Duration {
	return f.Init + f.Shuffle + f.SyncWait + f.Compute
}

// Decomposition is the factor breakdown of one recorded run.
type Decomposition struct {
	// Wall is run.start → run.finish on the master clock.
	Wall time.Duration
	// Pairs is the number of distinct task pairs that emitted spans.
	Pairs int
	// PerIter has one row per committed iteration, in order. Tail work
	// after the last boundary (the final output write) is charged to
	// the last row.
	PerIter []IterFactors
}

// Totals sums the per-iteration rows.
func (d Decomposition) Totals() IterFactors {
	var t IterFactors
	for _, f := range d.PerIter {
		t.Wall += f.Wall
		t.Init += f.Init
		t.Shuffle += f.Shuffle
		t.SyncWait += f.SyncWait
		t.Compute += f.Compute
	}
	return t
}

// Coverage is the fraction of run wall time the factors account for.
// Untraced master/coordination gaps push it below 1; it can slightly
// exceed 1 when concurrent pairs are skewed (the average pair's busy
// time is bounded by wall, but rounding and master-level spans add up).
func (d Decomposition) Coverage() float64 {
	if d.Wall <= 0 {
		return 0
	}
	return float64(d.Totals().Covered()) / float64(d.Wall)
}

// Decompose rolls an event stream up into the per-iteration factor
// decomposition. Each task pair's spans are swept over one shared
// timeline: overlapping spans are resolved by factor priority
// (init > shuffle > compute > sync-wait), the resulting exclusive
// segments are sliced at the master's iteration boundaries
// (KindIterDone events), and the per-pair results are averaged.
func Decompose(events []Event) Decomposition {
	spans := Spans(events)

	// Run extent and iteration boundaries on the master clock.
	var runStart, runFinish time.Duration
	haveStart, haveFinish := false, false
	type bound struct {
		iter int
		t    time.Duration
	}
	var bounds []bound
	for _, ev := range events {
		end := ev.Time + ev.Dur
		if end > runFinish && !haveFinish {
			runFinish = end
		}
		switch ev.Kind {
		case KindRunStart:
			if !haveStart {
				runStart, haveStart = ev.Time, true
			}
		case KindRunFinish:
			runFinish, haveFinish = ev.Time, true
		case KindIterDone:
			bounds = append(bounds, bound{iter: ev.Iter, t: ev.Time})
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })
	if len(bounds) == 0 {
		bounds = []bound{{iter: 1, t: runFinish}}
	}

	// Iteration windows: [runStart, t1) → iter1, [t1, t2) → iter2, …;
	// the last window stretches to runFinish to absorb the tail.
	d := Decomposition{Wall: runFinish - runStart}
	winStart := make([]time.Duration, len(bounds))
	winEnd := make([]time.Duration, len(bounds))
	prev := runStart
	for i, b := range bounds {
		winStart[i], winEnd[i] = prev, b.t
		prev = b.t
		d.PerIter = append(d.PerIter, IterFactors{Iter: b.iter, Wall: b.t - winStart[i]})
	}
	if runFinish > winEnd[len(bounds)-1] {
		winEnd[len(bounds)-1] = runFinish
	}

	// deposit charges [a, b) of one factor into the iteration windows,
	// splitting at boundaries. The first window is open on the left and
	// the last on the right, so nothing outside the run extent is lost.
	deposit := func(a, b time.Duration, factor int, weight float64) {
		for i := range winStart {
			lo, hi := winStart[i], winEnd[i]
			if i == 0 {
				lo = a
			}
			if i == len(winStart)-1 {
				hi = b
			}
			lo, hi = max(lo, a), min(hi, b)
			if hi > lo {
				d.PerIter[i].add(factor, time.Duration(float64(hi-lo)*weight))
			}
		}
	}

	// Group spans per task pair; master-level spans (Task < 0) form
	// their own full-weight group.
	groups := make(map[int][]Span)
	for _, s := range spans {
		if factorOf(s.Kind) == factorNone {
			continue
		}
		key := s.Task
		if key < 0 {
			key = -1
		}
		groups[key] = append(groups[key], s)
	}
	for t := range groups {
		if t >= 0 {
			d.Pairs++
		}
	}

	for task, g := range groups {
		weight := 1.0
		if task >= 0 && d.Pairs > 0 {
			weight = 1.0 / float64(d.Pairs)
		}
		sweep(g, func(a, b time.Duration, factor int) {
			deposit(a, b, factor, weight)
		})
	}
	return d
}

// sweep resolves a group's overlapping spans into exclusive segments,
// assigning each instant to the highest-priority factor active there.
func sweep(spans []Span, emit func(a, b time.Duration, factor int)) {
	type edge struct {
		t      time.Duration
		factor int
		delta  int
	}
	edges := make([]edge, 0, 2*len(spans))
	for _, s := range spans {
		f := factorOf(s.Kind)
		if f == factorNone || s.Dur <= 0 {
			continue
		}
		edges = append(edges, edge{t: s.Start, factor: f, delta: 1})
		edges = append(edges, edge{t: s.Start + s.Dur, factor: f, delta: -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	var active [numFactors]int
	top := func() int {
		for f := numFactors - 1; f > factorNone; f-- {
			if active[f] > 0 {
				return f
			}
		}
		return factorNone
	}
	prev := time.Duration(0)
	for i := 0; i < len(edges); {
		t := edges[i].t
		if f := top(); f != factorNone && t > prev {
			emit(prev, t, f)
		}
		for i < len(edges) && edges[i].t == t {
			active[edges[i].factor] += edges[i].delta
			i++
		}
		prev = t
	}
}

// WriteTable renders the decomposition as the per-iteration table
// imrrun -trace prints.
func (d Decomposition) WriteTable(w io.Writer) {
	ms := func(x time.Duration) string {
		return fmt.Sprintf("%.3f", float64(x)/float64(time.Millisecond))
	}
	fmt.Fprintf(w, "%5s %12s %12s %12s %12s %12s\n",
		"iter", "wall ms", "init ms", "shuffle ms", "syncwait ms", "compute ms")
	for _, f := range d.PerIter {
		fmt.Fprintf(w, "%5d %12s %12s %12s %12s %12s\n",
			f.Iter, ms(f.Wall), ms(f.Init), ms(f.Shuffle), ms(f.SyncWait), ms(f.Compute))
	}
	t := d.Totals()
	fmt.Fprintf(w, "%5s %12s %12s %12s %12s %12s\n",
		"total", ms(t.Wall), ms(t.Init), ms(t.Shuffle), ms(t.SyncWait), ms(t.Compute))
	fmt.Fprintf(w, "factors cover %.1f%% of %s wall across %d task pairs\n",
		100*d.Coverage(), d.Wall.Round(10*time.Microsecond), d.Pairs)
}

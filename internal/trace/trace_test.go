package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanPairing(t *testing.T) {
	r := NewRecorder(64)
	p := r.Begin(SpanMap, "w0", 2, 3)
	r.Emit(KindIterDone, "master", -1, 3)
	p.End()
	r.RecordSpan(SpanReduce, "w1", 1, 3, r.Start(), 5*time.Millisecond)

	spans := Spans(r.Events())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	byKind := map[Kind]Span{}
	for _, s := range spans {
		byKind[s.Kind] = s
	}
	m := byKind[SpanMap]
	if m.Worker != "w0" || m.Task != 2 || m.Iter != 3 || m.Dur < 0 {
		t.Fatalf("paired span wrong: %+v", m)
	}
	rd := byKind[SpanReduce]
	if rd.Dur != 5*time.Millisecond || rd.Task != 1 {
		t.Fatalf("complete span wrong: %+v", rd)
	}
}

func TestUnmatchedBeginDropped(t *testing.T) {
	r := NewRecorder(64)
	r.Begin(SpanMap, "w0", 0, 1) // never ended
	r.RecordSpan(SpanReduce, "w0", 0, 1, r.Start(), time.Millisecond)
	spans := Spans(r.Events())
	if len(spans) != 1 || spans[0].Kind != SpanReduce {
		t.Fatalf("open span should be dropped: %+v", spans)
	}
}

func TestRingOverflow(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Emit(KindIterDone, "master", -1, i)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want 8", len(evs))
	}
	// The tail is retained, in order.
	for i, ev := range evs {
		if ev.Iter != 12+i {
			t.Fatalf("event %d has iter %d, want %d", i, ev.Iter, 12+i)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit(KindRunStart, "m", -1, 0)
	r.Begin(SpanMap, "w", 0, 1).End()
	r.RecordSpan(SpanReduce, "w", 0, 1, time.Now(), time.Millisecond)
	if r.Events() != nil || r.Dropped() != 0 || r.Len() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					r.Emit(KindCheckpoint, "w", g, i)
				case 1:
					r.Begin(SpanMap, "w", g, i).End()
				default:
					r.RecordSpan(SpanShuffle, "w", g, i, time.Now(), time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(r.Len()) + r.Dropped()
	// 8 goroutines × 500 iterations; Begin+End is two events.
	want := uint64(8 * (167 + 2*167 + 166))
	if total != want {
		t.Fatalf("recorded %d events, want %d", total, want)
	}
}

// TestDecomposePriority checks the overlap rules: a shuffle nested in a
// map span wins its window, compute carves streaming work out of a wait
// window, and iteration boundaries split the factor sums.
func TestDecomposePriority(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	mkSpan := func(kind Kind, task int, start, dur time.Duration) Event {
		return Event{Time: start, Dur: dur, Kind: kind, Task: task, Worker: "w", Iter: 1, Ph: 'X'}
	}
	events := []Event{
		{Time: 0, Kind: KindRunStart, Task: -1, Ph: 'i'},
		// Pair 0, iteration 1: wait [0,10) with map [2,6) inside and
		// shuffle [4,5) inside the map.
		mkSpan(SpanWait, 0, ms(0), ms(10)),
		mkSpan(SpanMap, 0, ms(2), ms(4)),
		mkSpan(SpanShuffle, 0, ms(4), ms(1)),
		{Time: ms(10), Kind: KindIterDone, Task: -1, Iter: 1, Ph: 'i'},
		// Iteration 2: pure compute [10,14).
		mkSpan(SpanReduce, 0, ms(10), ms(4)),
		{Time: ms(14), Kind: KindIterDone, Task: -1, Iter: 2, Ph: 'i'},
		{Time: ms(14), Kind: KindRunFinish, Task: -1, Ph: 'i'},
	}
	d := Decompose(events)
	if d.Wall != ms(14) || d.Pairs != 1 || len(d.PerIter) != 2 {
		t.Fatalf("frame wrong: %+v", d)
	}
	i1 := d.PerIter[0]
	if i1.SyncWait != ms(6) || i1.Compute != ms(3) || i1.Shuffle != ms(1) {
		t.Fatalf("iteration 1 factors wrong: %+v", i1)
	}
	i2 := d.PerIter[1]
	if i2.Compute != ms(4) || i2.SyncWait != 0 {
		t.Fatalf("iteration 2 factors wrong: %+v", i2)
	}
	if c := d.Coverage(); c < 0.99 || c > 1.01 {
		t.Fatalf("coverage = %v, want ~1", c)
	}
}

// TestDecomposeAveragesPairs: two pairs with identical spans must
// contribute the per-pair average, not the sum.
func TestDecomposeAveragesPairs(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	var events []Event
	events = append(events, Event{Time: 0, Kind: KindRunStart, Task: -1, Ph: 'i'})
	for task := 0; task < 2; task++ {
		events = append(events, Event{Time: 0, Dur: ms(8), Kind: SpanMap, Task: task, Iter: 1, Ph: 'X'})
	}
	events = append(events,
		Event{Time: ms(10), Kind: KindIterDone, Task: -1, Iter: 1, Ph: 'i'},
		Event{Time: ms(10), Kind: KindRunFinish, Task: -1, Ph: 'i'})
	d := Decompose(events)
	if got := d.PerIter[0].Compute; got != ms(8) {
		t.Fatalf("averaged compute = %v, want 8ms", got)
	}
}

func TestWriteChromeParses(t *testing.T) {
	r := NewRecorder(64)
	r.Emit(KindRunStart, "master", -1, 0)
	r.RecordSpan(SpanMap, "w0", 0, 1, r.Start(), 2*time.Millisecond)
	p := r.Begin(SpanReduce, "w0", 0, 1)
	p.End()
	r.Emit(KindRunFinish, "master", -1, 0)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 2 spans + 2 instants + 2 thread-name records.
	if len(evs) != 6 {
		t.Fatalf("got %d chrome events, want 6", len(evs))
	}
}

func TestWriteTable(t *testing.T) {
	d := Decomposition{
		Wall:  10 * time.Millisecond,
		Pairs: 2,
		PerIter: []IterFactors{
			{Iter: 1, Wall: 10 * time.Millisecond, Init: 2 * time.Millisecond, Compute: 6 * time.Millisecond},
		},
	}
	var buf bytes.Buffer
	d.WriteTable(&buf)
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("syncwait")) || !bytes.Contains(buf.Bytes(), []byte("total")) {
		t.Fatalf("table missing columns:\n%s", out)
	}
}

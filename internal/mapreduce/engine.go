package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

// Options tunes engine behaviour beyond the cluster spec.
type Options struct {
	// LocalityAware schedules map tasks on workers holding a replica of
	// their split when possible (Hadoop's locality optimization).
	LocalityAware bool
	// Speculative enables backup attempts for straggling tasks
	// (Hadoop's speculative execution).
	Speculative bool
	// SpeculativeSlowdown is the straggler threshold: a running task is
	// backed up when its elapsed time exceeds this multiple of the
	// median completed-task time. Default 2.
	SpeculativeSlowdown float64
	// MaxAttempts bounds per-task retries (default 4, like Hadoop).
	MaxAttempts int
	// FailTask, if set, injects a failure into the given attempt; used
	// by fault-tolerance tests.
	FailTask func(job, kind string, task, attempt int) bool
	// Trace receives job-phase spans (init, map wave, shuffle, reduce
	// wave). nil disables tracing at no cost.
	Trace *trace.Recorder
}

// Engine executes MapReduce jobs over a DFS and a cluster spec.
type Engine struct {
	fs   *dfs.DFS
	spec cluster.Spec
	m    *metrics.Set
	opts Options
}

// NewEngine creates an engine. m may be nil.
func NewEngine(fs *dfs.DFS, spec cluster.Spec, m *metrics.Set, opts Options) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.SpeculativeSlowdown <= 0 {
		opts.SpeculativeSlowdown = 2.0
	}
	return &Engine{fs: fs, spec: spec, m: m, opts: opts}, nil
}

// FS returns the engine's file system.
func (e *Engine) FS() *dfs.DFS { return e.fs }

// Spec returns the engine's cluster spec.
func (e *Engine) Spec() cluster.Spec { return e.spec }

// stretchSleep emulates a slow worker: a nominal compute duration d that
// took dReal wall time is padded so total wall ≈ d/speed.
func (e *Engine) stretchSleep(worker string, d time.Duration) {
	stretched := e.spec.StretchFor(worker, d)
	if extra := stretched - d; extra > 0 {
		time.Sleep(extra)
	}
}

// mapResult is one completed map task's partitioned output.
type mapResult struct {
	worker    string
	parts     [][]kv.Pair
	partBytes []int64
	opStartAt time.Duration // since job start; feeds the init metric
	counters  *Counters     // attempt-local; merged only if this attempt wins
}

// Submit runs job to completion and returns its result. Jobs are run one
// at a time per engine, like a dedicated Hadoop queue.
func (e *Engine) Submit(job *Job) (*JobResult, error) {
	return e.SubmitCtx(context.Background(), job)
}

// SubmitCtx is Submit with cancellation: a done ctx aborts the job
// between task completions and returns an error wrapping ctx's cause.
func (e *Engine) SubmitCtx(ctx context.Context, job *Job) (*JobResult, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", job.Name, err)
	}
	e.m.Add(metrics.JobsLaunched, 1)
	start := time.Now()
	initPending := e.opts.Trace.Begin(trace.SpanJobInit, "master", -1, 0)

	// Job submission/setup cost (scheduler, job setup tasks).
	time.Sleep(e.spec.JobInitOverhead)

	// One map task per block of each input file. A path that is not a
	// file is treated as a directory and expanded to its part files,
	// Hadoop's directory-input convention.
	var splits []dfs.Split
	for _, path := range job.Input {
		paths := []string{path}
		if !e.fs.Exists(path) {
			paths = e.fs.List(path + "/")
			if len(paths) == 0 {
				initPending.End()
				return nil, fmt.Errorf("mapreduce: job %s: dfs: no such file or directory %q", job.Name, path)
			}
		}
		for _, p := range paths {
			ss, err := e.fs.Splits(p)
			if err != nil {
				initPending.End()
				return nil, fmt.Errorf("mapreduce: job %s: %w", job.Name, err)
			}
			splits = append(splits, ss...)
		}
	}
	if len(splits) == 0 {
		initPending.End()
		return nil, fmt.Errorf("mapreduce: job %s: empty input", job.Name)
	}

	workers := e.spec.IDs()
	assignment := e.assignSplits(splits, workers)
	initPending.End()

	res := &JobResult{Name: job.Name, OutputPath: job.Output, Counters: NewCounters()}

	mapPending := e.opts.Trace.Begin(trace.SpanMapWave, "master", -1, 0)
	mapResults, mapAttempts, err := e.runMapPhase(ctx, job, splits, assignment, workers, start)
	mapPending.End()
	if err != nil {
		return nil, err
	}
	res.MapAttempts = mapAttempts
	for _, mr := range mapResults {
		res.Counters.merge(mr.counters)
	}

	var initSum time.Duration
	for _, mr := range mapResults {
		initSum += mr.opStartAt
	}
	res.Init = initSum / time.Duration(len(mapResults))

	redPending := e.opts.Trace.Begin(trace.SpanReduceWave, "master", -1, 0)
	outRecords, redAttempts, shuffleBytes, shuffleRemote, err := e.runReducePhase(ctx, job, mapResults, workers, res.Counters)
	redPending.End()
	if err != nil {
		return nil, err
	}
	res.ReduceAttempts = redAttempts
	res.OutputRecords = outRecords
	res.ShuffleBytes = shuffleBytes
	res.ShuffleRemote = shuffleRemote
	res.Wall = time.Since(start)
	return res, nil
}

// assignSplits maps each split to a worker: locality-first greedy with
// load balancing, or pure round-robin when locality is disabled.
func (e *Engine) assignSplits(splits []dfs.Split, workers []string) []string {
	load := make(map[string]int, len(workers))
	assignment := make([]string, len(splits))
	for i, s := range splits {
		var chosen string
		if e.opts.LocalityAware && len(s.Locations) > 0 {
			for _, loc := range s.Locations {
				if chosen == "" || load[loc] < load[chosen] {
					// Only candidates that are cluster workers count.
					for _, w := range workers {
						if w == loc {
							chosen = loc
							break
						}
					}
				}
			}
		}
		if chosen == "" {
			chosen = workers[i%len(workers)]
			for _, w := range workers {
				if load[w] < load[chosen] {
					chosen = w
				}
			}
		}
		assignment[i] = chosen
		load[chosen]++
	}
	return assignment
}

// attemptOutcome carries one task attempt's completion.
type attemptOutcome struct {
	task   int
	worker string
	result mapResult
	err    error
}

// runMapPhase executes all map tasks with slot limits, retry, and
// optional speculative backups.
func (e *Engine) runMapPhase(ctx context.Context, job *Job, splits []dfs.Split, assignment, workers []string, jobStart time.Time) ([]mapResult, int, error) {
	slots := make(map[string]chan struct{}, len(workers))
	for _, w := range workers {
		slots[w] = make(chan struct{}, e.spec.MapSlots)
	}

	type taskState struct {
		done       bool
		attempts   int
		backup     bool
		launchedAt time.Time
	}
	states := make([]taskState, len(splits))
	results := make([]mapResult, len(splits))
	outcomes := make(chan attemptOutcome, len(splits)*2)

	var mu sync.Mutex
	totalAttempts := 0

	launch := func(task int, worker string) {
		mu.Lock()
		states[task].attempts++
		attempt := states[task].attempts
		states[task].launchedAt = time.Now()
		totalAttempts++
		mu.Unlock()
		e.m.Add(metrics.TasksLaunched, 1)
		go func() {
			mr, err := e.runMapAttempt(job, splits[task], worker, attempt, task, slots[worker], jobStart)
			outcomes <- attemptOutcome{task: task, worker: worker, result: mr, err: err}
		}()
	}

	for i := range splits {
		launch(i, assignment[i])
	}

	remaining := len(splits)
	var durations []time.Duration

	// Straggler monitor (speculative execution).
	stopMon := make(chan struct{})
	if e.opts.Speculative {
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopMon:
					return
				case <-tick.C:
					mu.Lock()
					if len(durations)*2 < len(splits) {
						mu.Unlock()
						continue
					}
					med := median(durations)
					threshold := time.Duration(float64(med) * e.opts.SpeculativeSlowdown)
					if threshold <= 0 {
						threshold = time.Millisecond
					}
					for t := range states {
						st := &states[t]
						if st.done || st.backup {
							continue
						}
						if time.Since(st.launchedAt) > threshold {
							st.backup = true
							other := otherWorker(workers, assignment[t])
							e.m.Add(metrics.SpeculativeTasks, 1)
							mu.Unlock()
							launch(t, other)
							mu.Lock()
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	var firstErr error
	for remaining > 0 {
		var oc attemptOutcome
		select {
		case oc = <-outcomes:
		case <-ctx.Done():
			close(stopMon)
			return nil, totalAttempts, fmt.Errorf("mapreduce: job %s: canceled: %w", job.Name, context.Cause(ctx))
		}
		mu.Lock()
		st := &states[oc.task]
		if st.done {
			mu.Unlock()
			continue // a backup or original already finished this task
		}
		if oc.err != nil {
			if st.attempts >= e.opts.MaxAttempts {
				firstErr = fmt.Errorf("mapreduce: job %s map task %d failed after %d attempts: %w",
					job.Name, oc.task, st.attempts, oc.err)
				mu.Unlock()
				break
			}
			e.m.Add(metrics.TaskRetries, 1)
			mu.Unlock()
			launch(oc.task, otherWorker(workers, oc.worker))
			continue
		}
		st.done = true
		results[oc.task] = oc.result
		durations = append(durations, time.Since(st.launchedAt))
		remaining--
		mu.Unlock()
	}
	close(stopMon)
	if firstErr != nil {
		return nil, totalAttempts, firstErr
	}
	return results, totalAttempts, nil
}

// runMapAttempt executes one attempt of one map task on worker.
func (e *Engine) runMapAttempt(job *Job, split dfs.Split, worker string, attempt, task int, slot chan struct{}, jobStart time.Time) (mapResult, error) {
	slot <- struct{}{}
	defer func() { <-slot }()

	// Task process launch cost (Hadoop's per-task JVM start).
	time.Sleep(e.spec.TaskStartOverhead)

	if f := e.opts.FailTask; f != nil && f(job.Name, "map", task, attempt) {
		return mapResult{}, fmt.Errorf("injected failure (map task %d attempt %d)", task, attempt)
	}

	opStart := time.Since(jobStart)
	recs, err := e.fs.ReadSplit(split, worker)
	if err != nil {
		return mapResult{}, err
	}

	computeStart := time.Now()
	parts := make([][]kv.Pair, job.NumReduce)
	emit := func(k, v any) {
		p := job.Ops.Partition(k, job.NumReduce)
		parts[p] = append(parts[p], kv.Pair{Key: k, Value: v})
	}
	counters := NewCounters()
	for _, rec := range recs {
		var err error
		switch {
		case job.Map != nil:
			err = job.Map(rec.Key, rec.Value, emit)
		case job.MapSrc != nil:
			err = job.MapSrc(split.Path, rec.Key, rec.Value, emit)
		default:
			err = job.MapCnt(counters, rec.Key, rec.Value, emit)
		}
		if err != nil {
			return mapResult{}, fmt.Errorf("map(%v): %w", rec.Key, err)
		}
	}
	if job.Combine != nil {
		for p := range parts {
			combined, err := runReduceFunc(job.Combine, parts[p], job.Ops)
			if err != nil {
				return mapResult{}, fmt.Errorf("combine: %w", err)
			}
			parts[p] = combined
		}
	}
	partBytes := make([]int64, job.NumReduce)
	for p, pairs := range parts {
		for _, pair := range pairs {
			partBytes[p] += int64(job.Ops.PairSize(pair))
		}
	}
	e.stretchSleep(worker, time.Since(computeStart))
	return mapResult{worker: worker, parts: parts, partBytes: partBytes, opStartAt: opStart, counters: counters}, nil
}

// runReducePhase shuffles map outputs to reduce tasks and runs them,
// with the same retry and speculative-backup policy as the map phase.
// Duplicate attempts are safe: a reduce attempt is deterministic given
// the map outputs and writes the same part file.
func (e *Engine) runReducePhase(ctx context.Context, job *Job, mapResults []mapResult, workers []string, jobCounters *Counters) (outRecords, attempts int, shuffleBytes, shuffleRemote int64, err error) {
	slots := make(map[string]chan struct{}, len(workers))
	for _, w := range workers {
		slots[w] = make(chan struct{}, e.spec.ReduceSlots)
	}

	type redOutcome struct {
		task     int
		worker   string
		records  int
		bytes    int64
		remote   int64
		counters *Counters
		err      error
	}
	type taskState struct {
		done       bool
		attempts   int
		backup     bool
		launchedAt time.Time
	}
	states := make([]taskState, job.NumReduce)
	outcomes := make(chan redOutcome, job.NumReduce*2)
	var mu sync.Mutex

	launch := func(task int, worker string) {
		mu.Lock()
		states[task].attempts++
		attempt := states[task].attempts
		states[task].launchedAt = time.Now()
		attempts++
		mu.Unlock()
		e.m.Add(metrics.TasksLaunched, 1)
		go func() {
			records, bytes, remote, counters, err := e.runReduceAttempt(job, task, attempt, worker, mapResults, slots[worker])
			outcomes <- redOutcome{task: task, worker: worker, records: records, bytes: bytes, remote: remote, counters: counters, err: err}
		}()
	}
	for r := 0; r < job.NumReduce; r++ {
		launch(r, workers[r%len(workers)])
	}

	remaining := job.NumReduce
	var durations []time.Duration
	stopMon := make(chan struct{})
	defer close(stopMon)
	if e.opts.Speculative {
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopMon:
					return
				case <-tick.C:
					mu.Lock()
					if len(durations)*2 < job.NumReduce {
						mu.Unlock()
						continue
					}
					med := median(durations)
					threshold := time.Duration(float64(med) * e.opts.SpeculativeSlowdown)
					if threshold <= 0 {
						threshold = time.Millisecond
					}
					for t := range states {
						st := &states[t]
						if st.done || st.backup {
							continue
						}
						if time.Since(st.launchedAt) > threshold {
							st.backup = true
							other := otherWorker(workers, workers[t%len(workers)])
							e.m.Add(metrics.SpeculativeTasks, 1)
							mu.Unlock()
							launch(t, other)
							mu.Lock()
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	for remaining > 0 {
		var oc redOutcome
		select {
		case oc = <-outcomes:
		case <-ctx.Done():
			return 0, attempts, 0, 0, fmt.Errorf("mapreduce: job %s: canceled: %w", job.Name, context.Cause(ctx))
		}
		mu.Lock()
		st := &states[oc.task]
		if st.done {
			mu.Unlock()
			continue
		}
		if oc.err != nil {
			if st.attempts >= e.opts.MaxAttempts {
				mu.Unlock()
				return 0, attempts, 0, 0, fmt.Errorf("mapreduce: job %s reduce task %d failed after %d attempts: %w",
					job.Name, oc.task, st.attempts, oc.err)
			}
			e.m.Add(metrics.TaskRetries, 1)
			mu.Unlock()
			launch(oc.task, otherWorker(workers, oc.worker))
			continue
		}
		st.done = true
		durations = append(durations, time.Since(st.launchedAt))
		remaining--
		mu.Unlock()
		outRecords += oc.records
		shuffleBytes += oc.bytes
		shuffleRemote += oc.remote
		jobCounters.merge(oc.counters)
	}
	return outRecords, attempts, shuffleBytes, shuffleRemote, nil
}

// runReduceAttempt fetches partition task from every map output, groups,
// reduces, and writes the part file.
func (e *Engine) runReduceAttempt(job *Job, task, attempt int, worker string, mapResults []mapResult, slot chan struct{}) (int, int64, int64, *Counters, error) {
	slot <- struct{}{}
	defer func() { <-slot }()

	time.Sleep(e.spec.TaskStartOverhead)

	if f := e.opts.FailTask; f != nil && f(job.Name, "reduce", task, attempt) {
		return 0, 0, 0, nil, fmt.Errorf("injected failure (reduce task %d attempt %d)", task, attempt)
	}

	fetchStart := time.Now()
	var fetched []kv.Pair
	var bytes, remote int64
	for _, mr := range mapResults {
		fetched = append(fetched, mr.parts[task]...)
		bytes += mr.partBytes[task]
		if mr.worker != worker {
			remote += mr.partBytes[task]
		}
	}
	e.m.Add(metrics.ShuffleBytes, bytes)
	e.m.Add(metrics.ShuffleRemote, remote)
	e.opts.Trace.RecordSpan(trace.SpanShuffleWave, worker, task, 0, fetchStart, time.Since(fetchStart))

	counters := NewCounters()
	red := job.Reduce
	if red == nil {
		red = func(key any, values []any, emit kv.Emit) error {
			return job.ReduceCnt(counters, key, values, emit)
		}
	}
	computeStart := time.Now()
	out, err := runReduceFunc(red, fetched, job.Ops)
	if err != nil {
		return 0, 0, 0, nil, fmt.Errorf("reduce task %d: %w", task, err)
	}
	e.stretchSleep(worker, time.Since(computeStart))

	path := fmt.Sprintf("%s/part-%d", job.Output, task)
	if err := e.fs.WriteFile(path, worker, out, job.Ops); err != nil {
		return 0, 0, 0, nil, err
	}
	return len(out), bytes, remote, counters, nil
}

// runReduceFunc groups pairs by key and applies fn, collecting emitted
// output.
func runReduceFunc(fn ReduceFunc, pairs []kv.Pair, ops kv.Ops) ([]kv.Pair, error) {
	groups := kv.GroupPairs(pairs, ops)
	var out []kv.Pair
	emit := func(k, v any) { out = append(out, kv.Pair{Key: k, Value: v}) }
	for _, g := range groups {
		if err := fn(g.Key, g.Values, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// otherWorker picks a worker different from avoid when possible.
func otherWorker(workers []string, avoid string) string {
	for i, w := range workers {
		if w == avoid {
			return workers[(i+1)%len(workers)]
		}
	}
	return workers[0]
}

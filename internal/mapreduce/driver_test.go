package mapreduce

import (
	"math"
	"testing"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

// decaySpec builds a toy iterative computation: every key's state halves
// each iteration (static payload carried along, as in the paper's
// baseline pattern). Distance is the summed absolute state change, so
// with initial state 1.0 per key the distance after iteration i is
// n * 2^-i, giving a predictable convergence point.
func decaySpec(n int) IterSpec {
	return IterSpec{
		Name:    "decay",
		Input:   "/init",
		WorkDir: "/work",
		Map: func(key, value any, emit kv.Emit) error {
			emit(key, value) // carrier: state + static travel together
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			v := values[0].(IterValue)
			emit(key, IterValue{State: v.State.(float64) / 2, Static: v.Static})
			return nil
		},
		NumReduce: 2,
		Ops:       kv.OpsFor[int64, IterValue](nil),
		Distance: func(key, prev, curr any) float64 {
			return math.Abs(prev.(IterValue).State.(float64) - curr.(IterValue).State.(float64))
		},
	}
}

func writeDecayInput(t *testing.T, e *Engine, n int) {
	t.Helper()
	recs := make([]kv.Pair, n)
	for i := range recs {
		recs[i] = kv.Pair{Key: int64(i), Value: IterValue{State: 1.0, Static: []int32{1, 2, 3}}}
	}
	if err := e.FS().WriteFile("/init", "worker-0", recs, kv.OpsFor[int64, IterValue](nil)); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeFixedIterations(t *testing.T) {
	e, _, m := testEnv(t, 2, Options{})
	writeDecayInput(t, e, 10)
	spec := decaySpec(10)
	spec.MaxIter = 5
	res, err := RunIterative(e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 || res.Converged {
		t.Fatalf("iterations=%d converged=%v", res.Iterations, res.Converged)
	}
	// 5 iterations, no check jobs.
	if got := m.Get(metrics.JobsLaunched); got != 5 {
		t.Fatalf("jobs launched = %d, want 5", got)
	}
	// Final state must be 2^-5.
	recs, err := e.FS().ReadFile(res.OutputPath+"/part-0", "worker-0")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if got := r.Value.(IterValue).State.(float64); math.Abs(got-1.0/32) > 1e-12 {
			t.Fatalf("state = %v, want 1/32", got)
		}
	}
}

func TestIterativeDistanceTermination(t *testing.T) {
	e, _, m := testEnv(t, 2, Options{})
	const n = 8
	writeDecayInput(t, e, n)
	spec := decaySpec(n)
	spec.MaxIter = 50
	// Distance after iteration i is n * 2^-i; threshold 0.1 is crossed
	// when 8*2^-i < 0.1, i.e. at i = 7.
	spec.DistThreshold = 0.1
	res, err := RunIterative(e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations != 7 {
		t.Fatalf("converged after %d iterations, want 7", res.Iterations)
	}
	// Each iteration ≥2 runs an extra check job: 7 main + 6 checks.
	if got := m.Get(metrics.JobsLaunched); got != 13 {
		t.Fatalf("jobs launched = %d, want 13 (7 main + 6 checks)", got)
	}
	last := res.Stats[len(res.Stats)-1]
	wantDist := float64(n) * math.Pow(2, -7)
	if math.Abs(last.Distance-wantDist) > 1e-9 {
		t.Fatalf("distance = %v, want %v", last.Distance, wantDist)
	}
}

func TestIterativeStatsAccumulate(t *testing.T) {
	e, _, _ := testEnv(t, 2, Options{})
	writeDecayInput(t, e, 4)
	spec := decaySpec(4)
	spec.MaxIter = 3
	res, err := RunIterative(e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 3 {
		t.Fatalf("stats count %d", len(res.Stats))
	}
	var cum int64
	for i, st := range res.Stats {
		if st.Iteration != i+1 {
			t.Fatalf("stat %d has iteration %d", i, st.Iteration)
		}
		if st.CumulativeWall < st.JobWall || st.CumulativeExInit > st.CumulativeWall {
			t.Fatalf("inconsistent stats: %+v", st)
		}
		if int64(st.CumulativeWall) <= cum {
			t.Fatalf("cumulative wall not increasing")
		}
		cum = int64(st.CumulativeWall)
		if st.ShuffleBytes <= 0 {
			t.Fatalf("no shuffle bytes in iteration %d", st.Iteration)
		}
	}
	if res.TotalWall != res.Stats[2].CumulativeWall {
		t.Fatal("TotalWall mismatch")
	}
}

func TestIterativeCleansIntermediateOutputs(t *testing.T) {
	e, fs, _ := testEnv(t, 2, Options{})
	writeDecayInput(t, e, 4)
	spec := decaySpec(4)
	spec.MaxIter = 6
	if _, err := RunIterative(e, spec); err != nil {
		t.Fatal(err)
	}
	if got := fs.List("/work/iter-001/"); len(got) != 0 {
		t.Fatalf("iteration 1 output not cleaned: %v", got)
	}
	if got := fs.List("/work/iter-006/"); len(got) == 0 {
		t.Fatal("final output missing")
	}
}

func TestIterativeKeepOutputs(t *testing.T) {
	e, fs, _ := testEnv(t, 2, Options{})
	writeDecayInput(t, e, 4)
	spec := decaySpec(4)
	spec.MaxIter = 4
	spec.KeepOutputs = true
	if _, err := RunIterative(e, spec); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if got := fs.List(fmtIterDir("/work", i) + "/"); len(got) == 0 {
			t.Fatalf("iteration %d output missing", i)
		}
	}
}

func fmtIterDir(work string, i int) string {
	return work + "/iter-" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestIterativeSpecValidation(t *testing.T) {
	e, _, _ := testEnv(t, 1, Options{})
	if _, err := RunIterative(e, IterSpec{Name: "x"}); err == nil {
		t.Fatal("spec without termination accepted")
	}
	if _, err := RunIterative(e, IterSpec{Name: "x", DistThreshold: 0.1}); err == nil {
		t.Fatal("spec with threshold but no Distance accepted")
	}
}

func TestIterValueBytes(t *testing.T) {
	v := IterValue{State: 1.0, Static: []int32{1, 2}}
	if v.Bytes() != 8+12 {
		t.Fatalf("IterValue.Bytes = %d", v.Bytes())
	}
	tg := Tagged{Src: 1, Val: 2.0}
	if tg.Bytes() != 9 {
		t.Fatalf("Tagged.Bytes = %d", tg.Bytes())
	}
}

package mapreduce

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Fatalf("counter values wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names: %v", names)
	}
	d := NewCounters()
	d.Inc("a", 10)
	c.merge(d)
	if c.Get("a") != 15 {
		t.Fatalf("merge: a=%d", c.Get("a"))
	}
	c.merge(nil) // no-op
}

// counterWordCount counts mapped words and reduced groups via counters.
func counterWordCount(input, output string) *Job {
	return &Job{
		Name:   "wc-counters",
		Input:  []string{input},
		Output: output,
		MapCnt: func(c *Counters, key, value any, emit kv.Emit) error {
			for _, w := range strings.Fields(value.(string)) {
				c.Inc("words.mapped", 1)
				emit(w, int64(1))
			}
			return nil
		},
		ReduceCnt: func(c *Counters, key any, values []any, emit kv.Emit) error {
			c.Inc("groups.reduced", 1)
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			emit(key, sum)
			return nil
		},
		NumReduce: 3,
		Ops:       kv.OpsFor[string, int64](nil),
	}
}

func TestJobCounters(t *testing.T) {
	e, fs, _ := testEnv(t, 2, Options{})
	writeWords(t, fs, "/in", []string{"a b c", "a b", "a"})
	res, err := e.Submit(counterWordCount("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get("words.mapped"); got != 6 {
		t.Fatalf("words.mapped = %d, want 6", got)
	}
	if got := res.Counters.Get("groups.reduced"); got != 3 {
		t.Fatalf("groups.reduced = %d, want 3", got)
	}
}

// TestCountersWinnerOnlyUnderRetry: the failed first attempt's counter
// increments must not leak into the job totals.
func TestCountersWinnerOnlyUnderRetry(t *testing.T) {
	opts := Options{
		FailTask: func(job, kind string, task, attempt int) bool {
			return attempt == 1 // every first attempt dies (after the injector check, before work)
		},
	}
	e, fs, _ := testEnv(t, 2, opts)
	writeWords(t, fs, "/in", []string{"x y", "y z"})
	res, err := e.Submit(counterWordCount("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get("words.mapped"); got != 4 {
		t.Fatalf("words.mapped = %d after retries, want 4", got)
	}
	if got := res.Counters.Get("groups.reduced"); got != 3 {
		t.Fatalf("groups.reduced = %d after retries, want 3", got)
	}
}

// TestCountersWinnerOnlyUnderSpeculation: duplicate (backup) attempts
// must not double-count even when both run to completion.
func TestCountersWinnerOnlyUnderSpeculation(t *testing.T) {
	spec := cluster.Heterogeneous([]float64{1, 0.04, 1})
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 3}, spec.IDs(), m)
	var lines []string
	const n = 40
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("w%02d w%02d", i, (i+1)%n))
	}
	writeWords(t, fs, "/in", lines)
	e, _ := NewEngine(fs, spec, m, Options{Speculative: true, SpeculativeSlowdown: 2})
	job := counterWordCount("/in", "/out")
	job.NumReduce = 9
	base := job.ReduceCnt
	job.ReduceCnt = func(c *Counters, key any, values []any, emit kv.Emit) error {
		time.Sleep(300 * time.Microsecond)
		return base(c, key, values, emit)
	}
	res, err := e.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(metrics.SpeculativeTasks) == 0 {
		t.Skip("no speculation triggered this run; winner-only property not exercised")
	}
	if got := res.Counters.Get("words.mapped"); got != 2*n {
		t.Fatalf("words.mapped = %d with speculation, want %d", got, 2*n)
	}
	if got := res.Counters.Get("groups.reduced"); got != n {
		t.Fatalf("groups.reduced = %d with speculation, want %d", got, n)
	}
}

func TestJobValidationCounterVariants(t *testing.T) {
	e, fs, _ := testEnv(t, 1, Options{})
	writeWords(t, fs, "/in", []string{"a"})
	good := counterWordCount("/in", "/out")
	// Both a plain and a counter map set: rejected.
	bad := counterWordCount("/in", "/out2")
	bad.Map = func(key, value any, emit kv.Emit) error { return nil }
	if _, err := e.Submit(bad); err == nil {
		t.Fatal("two map variants accepted")
	}
	// Both reduce variants set: rejected.
	bad2 := counterWordCount("/in", "/out3")
	bad2.Reduce = func(key any, values []any, emit kv.Emit) error { return nil }
	if _, err := e.Submit(bad2); err == nil {
		t.Fatal("two reduce variants accepted")
	}
	if _, err := e.Submit(good); err != nil {
		t.Fatal(err)
	}
}

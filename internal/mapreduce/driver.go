package mapreduce

import (
	"context"
	"fmt"
	"strings"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/trace"
)

// IterSpec describes an iterative algorithm implemented the Hadoop way
// (paper §2): a driver program submits one MapReduce job per iteration
// whose records carry state and static data together, plus — when a
// distance threshold is set — an extra MapReduce job after each
// iteration that measures the difference between consecutive outputs and
// lets the client test convergence.
type IterSpec struct {
	Name string
	// Input is the initial combined-record file (values are IterValue).
	Input string
	// WorkDir receives per-iteration outputs (WorkDir/iter-<i>).
	WorkDir string

	Map       MapFunc
	Combine   ReduceFunc
	Reduce    ReduceFunc
	NumReduce int
	Ops       kv.Ops

	// MaxIter bounds the iteration count (0 means no bound; then
	// DistThreshold must be positive).
	MaxIter int
	// DistThreshold terminates when the summed Distance between two
	// consecutive iterations drops below it; 0 disables the check jobs.
	DistThreshold float64
	// Distance compares a key's previous and current output values.
	Distance func(key, prev, curr any) float64

	// KeepOutputs retains every iteration's output instead of deleting
	// all but the last two.
	KeepOutputs bool
}

// IterStats records one iteration of the chain.
type IterStats struct {
	Iteration int
	// JobWall/JobInit are the iteration job's total and initialization
	// times; CheckWall/CheckInit the convergence-check job's (zero when
	// no check ran).
	JobWall, JobInit     time.Duration
	CheckWall, CheckInit time.Duration
	// CumulativeWall is total elapsed through this iteration;
	// CumulativeExInit excludes all initialization time — the paper's
	// "MapReduce (ex. init.)" curve.
	CumulativeWall, CumulativeExInit time.Duration
	// Distance is the measured inter-iteration distance (NaN-free: -1
	// when no check ran).
	Distance float64
	// ShuffleBytes is the iteration job's map→reduce volume.
	ShuffleBytes int64
}

// IterResult is the chain outcome.
type IterResult struct {
	Iterations int
	Stats      []IterStats
	OutputPath string
	Converged  bool
	TotalWall  time.Duration
}

// RunIterative executes the chained-jobs pattern on e.
//
// Deprecated: use RunIterativeCtx or imr.Cluster.Submit with a Chain spec.
// Both bound the chain with a context; Submit also returns a cancellable
// handle.
func RunIterative(e *Engine, spec IterSpec) (*IterResult, error) {
	return RunIterativeCtx(context.Background(), e, spec)
}

// RunIterativeCtx is RunIterative with cancellation: a done ctx aborts
// the chain between (and inside) its constituent jobs, and the returned
// error wraps ctx's cause.
func RunIterativeCtx(ctx context.Context, e *Engine, spec IterSpec) (*IterResult, error) {
	if spec.MaxIter <= 0 && spec.DistThreshold <= 0 {
		return nil, fmt.Errorf("mapreduce: iterative %s needs MaxIter or DistThreshold", spec.Name)
	}
	if spec.DistThreshold > 0 && spec.Distance == nil {
		return nil, fmt.Errorf("mapreduce: iterative %s has DistThreshold but no Distance", spec.Name)
	}
	res := &IterResult{}
	cur := spec.Input
	var cum, cumExInit time.Duration
	for i := 1; spec.MaxIter <= 0 || i <= spec.MaxIter; i++ {
		out := fmt.Sprintf("%s/iter-%03d", spec.WorkDir, i)
		job := &Job{
			Name:      fmt.Sprintf("%s-iter-%03d", spec.Name, i),
			Input:     []string{cur},
			Output:    out,
			Map:       spec.Map,
			Combine:   spec.Combine,
			Reduce:    spec.Reduce,
			NumReduce: spec.NumReduce,
			Ops:       spec.Ops,
		}
		jr, err := e.SubmitCtx(ctx, job)
		if err != nil {
			return nil, err
		}
		st := IterStats{
			Iteration:    i,
			JobWall:      jr.Wall,
			JobInit:      jr.Init,
			Distance:     -1,
			ShuffleBytes: jr.ShuffleBytes,
		}

		converged := false
		if spec.DistThreshold > 0 && i >= 2 {
			prev := fmt.Sprintf("%s/iter-%03d", spec.WorkDir, i-1)
			dist, cw, ci, err := e.runDistanceJob(ctx, spec, prev, out, i)
			if err != nil {
				return nil, err
			}
			st.CheckWall, st.CheckInit = cw, ci
			st.Distance = dist
			converged = dist < spec.DistThreshold
		}

		cum += st.JobWall + st.CheckWall
		cumExInit += (st.JobWall - st.JobInit) + (st.CheckWall - st.CheckInit)
		st.CumulativeWall, st.CumulativeExInit = cum, cumExInit
		res.Stats = append(res.Stats, st)
		res.Iterations = i
		e.opts.Trace.Emit(trace.KindIterDone, "driver", -1, i)

		if !spec.KeepOutputs && i >= 3 {
			// iter-(i-1) is still needed as "prev" for the next check;
			// anything older can go.
			e.deleteOutput(fmt.Sprintf("%s/iter-%03d", spec.WorkDir, i-2))
		}
		cur = out
		if converged {
			res.Converged = true
			break
		}
	}
	res.OutputPath = cur
	res.TotalWall = cum
	return res, nil
}

// runDistanceJob launches the extra convergence-check MapReduce job: it
// reads the previous and current outputs, tags records by source file,
// joins them by key in reduce, and emits per-key distances that the
// driver sums at the client.
func (e *Engine) runDistanceJob(ctx context.Context, spec IterSpec, prevDir, curDir string, iter int) (float64, time.Duration, time.Duration, error) {
	inputs := append(e.fs.List(prevDir+"/"), e.fs.List(curDir+"/")...)
	if len(inputs) == 0 {
		return 0, 0, 0, fmt.Errorf("mapreduce: no outputs to compare under %s and %s", prevDir, curDir)
	}
	checkOut := fmt.Sprintf("%s/check-%03d", spec.WorkDir, iter)
	job := &Job{
		Name:   fmt.Sprintf("%s-check-%03d", spec.Name, iter),
		Input:  inputs,
		Output: checkOut,
		MapSrc: func(path string, key, value any, emit kv.Emit) error {
			src := 1
			if strings.HasPrefix(path, prevDir+"/") {
				src = 0
			}
			emit(key, Tagged{Src: src, Val: value})
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			var prev, cur any
			havePrev, haveCur := false, false
			for _, v := range values {
				t, ok := v.(Tagged)
				if !ok {
					return fmt.Errorf("distance job: unexpected value %T", v)
				}
				if t.Src == 0 {
					prev, havePrev = t.Val, true
				} else {
					cur, haveCur = t.Val, true
				}
			}
			if !havePrev || !haveCur {
				// Key present in only one iteration: treat as unchanged;
				// graph algorithms emit every key every iteration.
				return nil
			}
			if d := spec.Distance(key, prev, cur); d != 0 {
				emit(key, d)
			}
			return nil
		},
		NumReduce: spec.NumReduce,
		Ops:       spec.Ops,
	}
	jr, err := e.SubmitCtx(ctx, job)
	if err != nil {
		return 0, 0, 0, err
	}
	var dist float64
	for _, part := range e.fs.List(checkOut + "/") {
		recs, err := e.fs.ReadFile(part, e.spec.IDs()[0])
		if err != nil {
			return 0, 0, 0, err
		}
		for _, r := range recs {
			dist += r.Value.(float64)
		}
	}
	e.deleteOutput(checkOut)
	return dist, jr.Wall, jr.Init, nil
}

func (e *Engine) deleteOutput(dir string) {
	for _, p := range e.fs.List(dir + "/") {
		e.fs.Delete(p)
	}
}

package mapreduce

import (
	"strings"
	"testing"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

// BenchmarkSubmitWordCount measures whole-job throughput on the baseline
// engine (no emulated scheduling overheads).
func BenchmarkSubmitWordCount(b *testing.B) {
	spec := cluster.Uniform(4)
	lines := make([]string, 2000)
	for i := range lines {
		lines[i] = strings.Repeat("alpha beta gamma delta ", 4)
	}
	recs := make([]kv.Pair, len(lines))
	for i, l := range lines {
		recs[i] = kv.Pair{Key: int64(i), Value: l}
	}
	words := int64(len(lines) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := metrics.NewSet()
		fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2}, spec.IDs(), m)
		if err := fs.WriteFile("/in", "worker-0", recs, kv.OpsFor[int64, string](nil)); err != nil {
			b.Fatal(err)
		}
		e, err := NewEngine(fs, spec, m, Options{LocalityAware: true})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := e.Submit(wordCountJob("/in", "/out", true)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(words*int64(b.N))/b.Elapsed().Seconds(), "words/s")
}

// BenchmarkGroupAndReduce isolates the reduce-side group+apply path.
func BenchmarkGroupAndReduce(b *testing.B) {
	ops := kv.OpsFor[int64, float64](nil)
	pairs := make([]kv.Pair, 50000)
	for i := range pairs {
		pairs[i] = kv.Pair{Key: int64(i % 5000), Value: float64(i)}
	}
	red := func(key any, values []any, emit kv.Emit) error {
		var sum float64
		for _, v := range values {
			sum += v.(float64)
		}
		emit(key, sum)
		return nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceFunc(red, pairs, ops); err != nil {
			b.Fatal(err)
		}
	}
}

// Package mapreduce is the from-scratch baseline engine: a Hadoop-like
// batch MapReduce with a job tracker, per-worker task slots,
// locality-aware split scheduling, sort/partition/shuffle, combiners,
// speculative execution and task retry. It is the comparator the paper
// evaluates iMapReduce against, including the iterative-driver pattern
// (one job per iteration plus a convergence-check job) whose overheads
// iMapReduce eliminates.
package mapreduce

import (
	"fmt"
	"time"

	"imapreduce/internal/kv"
)

// MapFunc is the user map operation: called once per input record.
type MapFunc func(key, value any, emit kv.Emit) error

// SourceMapFunc is a map operation that also receives the input path of
// its split, the way Hadoop mappers can read their InputSplit. The
// iterative driver uses it to tag records by originating file in the
// convergence-check job.
type SourceMapFunc func(path string, key, value any, emit kv.Emit) error

// ReduceFunc is the user reduce (and combine) operation: called once per
// key group.
type ReduceFunc func(key any, values []any, emit kv.Emit) error

// Job configures one MapReduce job.
type Job struct {
	Name string
	// Input paths in the DFS; one map task is created per block of each
	// input file, as in Hadoop.
	Input []string
	// Output is the DFS directory; reduce task r writes
	// Output + "/part-<r>".
	Output string

	// Exactly one of Map, MapSrc and MapCnt must be set; MapCnt
	// additionally receives attempt-local Counters.
	Map    MapFunc
	MapSrc SourceMapFunc
	MapCnt MapCounterFunc
	// Combine, if set, runs over each map task's local output per
	// partition before the shuffle (Hadoop's Combiner).
	Combine ReduceFunc
	// Exactly one of Reduce and ReduceCnt must be set.
	Reduce    ReduceFunc
	ReduceCnt ReduceCounterFunc

	NumReduce int
	Ops       kv.Ops
}

func (j *Job) validate() error {
	if j.Name == "" {
		return fmt.Errorf("mapreduce: job without a name")
	}
	if len(j.Input) == 0 {
		return fmt.Errorf("mapreduce: job %s has no input", j.Name)
	}
	if j.Output == "" {
		return fmt.Errorf("mapreduce: job %s has no output path", j.Name)
	}
	mapVariants := 0
	for _, set := range []bool{j.Map != nil, j.MapSrc != nil, j.MapCnt != nil} {
		if set {
			mapVariants++
		}
	}
	if mapVariants != 1 {
		return fmt.Errorf("mapreduce: job %s must set exactly one of Map, MapSrc and MapCnt", j.Name)
	}
	if (j.Reduce == nil) == (j.ReduceCnt == nil) {
		return fmt.Errorf("mapreduce: job %s must set exactly one of Reduce and ReduceCnt", j.Name)
	}
	if j.NumReduce <= 0 {
		return fmt.Errorf("mapreduce: job %s needs NumReduce > 0", j.Name)
	}
	if j.Ops.Hash == nil || j.Ops.Less == nil {
		return fmt.Errorf("mapreduce: job %s has incomplete kv.Ops", j.Name)
	}
	return nil
}

// JobResult reports one job's execution.
type JobResult struct {
	Name string
	// Wall is the total job time including scheduling overheads.
	Wall time.Duration
	// Init is the initialization share of Wall: job submission overhead
	// plus the average delay until map tasks begin their map operations
	// (the paper's §4.2 measurement).
	Init time.Duration
	// ShuffleBytes is the map→reduce volume; ShuffleRemote the part
	// that crossed worker boundaries.
	ShuffleBytes  int64
	ShuffleRemote int64
	// OutputRecords counts reduce output records across partitions.
	OutputRecords int
	OutputPath    string
	// MapAttempts / ReduceAttempts include retries and speculative
	// backups.
	MapAttempts    int
	ReduceAttempts int
	// Counters aggregates the user counters of the winning task
	// attempts (never nil; empty unless MapCnt/ReduceCnt were used).
	Counters *Counters
}

// IterValue is the baseline's combined record layout for iterative
// algorithms (paper §2.1): the iterated state and the static data travel
// together through map, shuffle, reduce and DFS on every iteration. This
// is precisely the redundancy iMapReduce's static/state separation
// removes.
type IterValue struct {
	State  any
	Static any
}

// Bytes implements kv.Sized.
func (v IterValue) Bytes() int {
	return kv.DefaultSize(v.State) + kv.DefaultSize(v.Static)
}

// Tagged marks a record with the input it came from; the iterative
// driver's convergence-check job uses it to pair previous and current
// states under one key.
type Tagged struct {
	Src int // 0 = previous iteration, 1 = current
	Val any
}

// Bytes implements kv.Sized.
func (t Tagged) Bytes() int { return 1 + kv.DefaultSize(t.Val) }

func init() {
	kv.RegisterWireType(IterValue{})
	kv.RegisterWireType(Tagged{})
	// The nested any fields encode through the kv value registry; a
	// payload type without a codec makes Append report ok=false, which
	// the transport turns into a gob-framed message.
	kv.RegisterValueCodec(IterValue{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			iv := v.(IterValue)
			buf, ok := kv.AppendValue(buf, iv.State)
			if !ok {
				return buf, false
			}
			return kv.AppendValue(buf, iv.Static)
		},
		Decode: func(data []byte) (any, int, error) {
			state, n, err := kv.DecodeValue(data)
			if err != nil {
				return nil, 0, err
			}
			static, m, err := kv.DecodeValue(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return IterValue{State: state, Static: static}, n + m, nil
		},
	})
	kv.RegisterValueCodec(Tagged{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			tg := v.(Tagged)
			return kv.AppendValue(kv.AppendVarint(buf, int64(tg.Src)), tg.Val)
		},
		Decode: func(data []byte) (any, int, error) {
			src, n, err := kv.Varint(data)
			if err != nil {
				return nil, 0, err
			}
			val, m, err := kv.DecodeValue(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return Tagged{Src: int(src), Val: val}, n + m, nil
		},
	})
}

package mapreduce

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

// testEnv bundles an engine over a fresh DFS.
func testEnv(t *testing.T, workers int, opts Options) (*Engine, *dfs.DFS, *metrics.Set) {
	t.Helper()
	spec := cluster.Uniform(workers)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 12, Replication: 2}, spec.IDs(), m)
	e, err := NewEngine(fs, spec, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, fs, m
}

func stringOps() kv.Ops { return kv.OpsFor[string, any](nil) }

// writeWords stores a word-count style input: (int64 line, string text).
func writeWords(t *testing.T, fs *dfs.DFS, path string, lines []string) {
	t.Helper()
	ops := kv.OpsFor[int64, string](nil)
	recs := make([]kv.Pair, len(lines))
	for i, l := range lines {
		recs[i] = kv.Pair{Key: int64(i), Value: l}
	}
	if err := fs.WriteFile(path, "worker-0", recs, ops); err != nil {
		t.Fatal(err)
	}
}

func wordCountJob(input, output string, combine bool) *Job {
	j := &Job{
		Name:   "wordcount",
		Input:  []string{input},
		Output: output,
		Map: func(key, value any, emit kv.Emit) error {
			for _, w := range strings.Fields(value.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			emit(key, sum)
			return nil
		},
		NumReduce: 3,
		Ops:       kv.OpsFor[string, int64](nil),
	}
	if combine {
		j.Combine = j.Reduce
	}
	return j
}

func readCounts(t *testing.T, fs *dfs.DFS, dir string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, part := range fs.List(dir + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			out[r.Key.(string)] += r.Value.(int64)
		}
	}
	return out
}

func TestWordCount(t *testing.T) {
	e, fs, _ := testEnv(t, 3, Options{LocalityAware: true})
	writeWords(t, fs, "/in", []string{
		"a b c", "a a b", "c d", "e", "a d d",
	})
	res, err := e.Submit(wordCountJob("/in", "/out", false))
	if err != nil {
		t.Fatal(err)
	}
	counts := readCounts(t, fs, "/out")
	want := map[string]int64{"a": 4, "b": 2, "c": 2, "d": 3, "e": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
	if res.OutputRecords != len(want) {
		t.Errorf("OutputRecords = %d, want %d", res.OutputRecords, len(want))
	}
	if res.ShuffleBytes <= 0 {
		t.Error("no shuffle bytes recorded")
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = "x y z x y x"
	}
	e1, fs1, _ := testEnv(t, 2, Options{})
	writeWords(t, fs1, "/in", lines)
	plain, err := e1.Submit(wordCountJob("/in", "/out", false))
	if err != nil {
		t.Fatal(err)
	}
	e2, fs2, _ := testEnv(t, 2, Options{})
	writeWords(t, fs2, "/in", lines)
	combined, err := e2.Submit(wordCountJob("/in", "/out", true))
	if err != nil {
		t.Fatal(err)
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", combined.ShuffleBytes, plain.ShuffleBytes)
	}
	c1 := readCounts(t, fs1, "/out")
	c2 := readCounts(t, fs2, "/out")
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("combiner changed results: %s %d vs %d", k, c1[k], c2[k])
		}
	}
}

func TestMapTaskPerBlock(t *testing.T) {
	e, fs, m := testEnv(t, 2, Options{})
	lines := make([]string, 400) // with 4 KiB blocks this spans several blocks
	for i := range lines {
		lines[i] = strings.Repeat("word ", 20)
	}
	writeWords(t, fs, "/in", lines)
	splits, _ := fs.Splits("/in")
	if len(splits) < 2 {
		t.Fatalf("test premise broken: %d splits", len(splits))
	}
	if _, err := e.Submit(wordCountJob("/in", "/out", false)); err != nil {
		t.Fatal(err)
	}
	if got := m.Get(metrics.TasksLaunched); got != int64(len(splits)+3) {
		t.Fatalf("tasks launched %d, want %d map + 3 reduce", got, len(splits))
	}
}

func TestLocalityPreference(t *testing.T) {
	spec := cluster.Uniform(4)
	m := metrics.NewSet()
	// Single replica: a locality-aware run should read every split
	// locally, a locality-blind run mostly remotely.
	fs := dfs.New(dfs.Config{BlockSize: 1 << 10, Replication: 1}, spec.IDs(), m)
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = strings.Repeat("w ", 30)
	}
	writeWords(t, fs, "/in", lines)

	e, _ := NewEngine(fs, spec, m, Options{LocalityAware: true})
	if _, err := e.Submit(wordCountJob("/in", "/out1", false)); err != nil {
		t.Fatal(err)
	}
	localRemote := m.Get(metrics.DFSReadRemote)

	e2, _ := NewEngine(fs, spec, m, Options{LocalityAware: false})
	if _, err := e2.Submit(wordCountJob("/in", "/out2", false)); err != nil {
		t.Fatal(err)
	}
	blindRemote := m.Get(metrics.DFSReadRemote) - localRemote
	if localRemote >= blindRemote {
		t.Fatalf("locality-aware remote reads (%d) should be below blind ones (%d)", localRemote, blindRemote)
	}
}

func TestTaskRetryOnInjectedFailure(t *testing.T) {
	var failures atomic.Int64
	opts := Options{
		FailTask: func(job, kind string, task, attempt int) bool {
			if kind == "map" && task == 0 && attempt == 1 {
				failures.Add(1)
				return true
			}
			return false
		},
	}
	e, fs, m := testEnv(t, 2, opts)
	writeWords(t, fs, "/in", []string{"a b", "b c"})
	if _, err := e.Submit(wordCountJob("/in", "/out", false)); err != nil {
		t.Fatal(err)
	}
	if failures.Load() != 1 {
		t.Fatalf("injector fired %d times", failures.Load())
	}
	if m.Get(metrics.TaskRetries) != 1 {
		t.Fatalf("retries = %d, want 1", m.Get(metrics.TaskRetries))
	}
	counts := readCounts(t, fs, "/out")
	if counts["b"] != 2 {
		t.Fatalf("retry corrupted results: %v", counts)
	}
}

func TestReduceRetry(t *testing.T) {
	opts := Options{
		FailTask: func(job, kind string, task, attempt int) bool {
			return kind == "reduce" && attempt == 1
		},
	}
	e, fs, m := testEnv(t, 2, opts)
	writeWords(t, fs, "/in", []string{"a b c d e f"})
	if _, err := e.Submit(wordCountJob("/in", "/out", false)); err != nil {
		t.Fatal(err)
	}
	if m.Get(metrics.TaskRetries) != 3 { // one per reduce task
		t.Fatalf("retries = %d, want 3", m.Get(metrics.TaskRetries))
	}
	counts := readCounts(t, fs, "/out")
	if len(counts) != 6 {
		t.Fatalf("results wrong after reduce retries: %v", counts)
	}
}

func TestJobFailsAfterMaxAttempts(t *testing.T) {
	opts := Options{
		MaxAttempts: 2,
		FailTask: func(job, kind string, task, attempt int) bool {
			return kind == "map" && task == 0
		},
	}
	e, fs, _ := testEnv(t, 2, opts)
	writeWords(t, fs, "/in", []string{"a"})
	if _, err := e.Submit(wordCountJob("/in", "/out", false)); err == nil {
		t.Fatal("job should fail after exhausting attempts")
	}
}

func TestUserMapErrorFailsJob(t *testing.T) {
	e, fs, _ := testEnv(t, 2, Options{MaxAttempts: 2})
	writeWords(t, fs, "/in", []string{"a"})
	job := wordCountJob("/in", "/out", false)
	job.Map = func(key, value any, emit kv.Emit) error {
		return fmt.Errorf("boom")
	}
	if _, err := e.Submit(job); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpeculativeExecution(t *testing.T) {
	// worker-1 runs at 1/50 speed; with speculation a backup on a fast
	// worker should rescue its tasks.
	spec := cluster.Heterogeneous([]float64{1, 0.02, 1})
	spec.JobInitOverhead = 0
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 9, Replication: 3}, spec.IDs(), m)
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = strings.Repeat("alpha beta gamma delta ", 8)
	}
	writeWords(t, fs, "/in", lines)
	e, _ := NewEngine(fs, spec, m, Options{Speculative: true, SpeculativeSlowdown: 1.5, LocalityAware: false})
	res, err := e.Submit(wordCountJob("/in", "/out", false))
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(metrics.SpeculativeTasks) == 0 {
		t.Fatal("no speculative backups launched for a 50x straggler")
	}
	counts := readCounts(t, fs, "/out")
	if counts["alpha"] != int64(64*8) {
		t.Fatalf("speculation corrupted results: %v", counts["alpha"])
	}
	_ = res
}

func TestSpeculativeReduceExecution(t *testing.T) {
	// A 25x-slow worker with many reduce tasks: backups must fire and
	// results must stay correct. Every reduce group burns a measurable
	// slice of compute so the straggler detector has real durations to
	// compare.
	spec := cluster.Heterogeneous([]float64{1, 0.04, 1})
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 3}, spec.IDs(), m)
	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, fmt.Sprintf("word%02d word%02d word%02d", i, (i+1)%60, (i+2)%60))
	}
	writeWords(t, fs, "/in", lines)
	e, _ := NewEngine(fs, spec, m, Options{Speculative: true, SpeculativeSlowdown: 2})
	job := wordCountJob("/in", "/out", false)
	job.NumReduce = 9 // several waves so stragglers are visible
	baseReduce := job.Reduce
	job.Reduce = func(key any, values []any, emit kv.Emit) error {
		time.Sleep(500 * time.Microsecond) // nominal work, 12.5ms on the slow worker
		return baseReduce(key, values, emit)
	}
	if _, err := e.Submit(job); err != nil {
		t.Fatal(err)
	}
	if m.Get(metrics.SpeculativeTasks) == 0 {
		t.Fatal("no speculative backups launched")
	}
	counts := readCounts(t, fs, "/out")
	if counts["word00"] != 3 || len(counts) != 60 {
		t.Fatalf("speculation corrupted results: %d words, word00=%d", len(counts), counts["word00"])
	}
}

func TestInitTimeMeasured(t *testing.T) {
	spec := cluster.Uniform(2)
	spec.JobInitOverhead = 30 * time.Millisecond
	spec.TaskStartOverhead = 5 * time.Millisecond
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 1}, spec.IDs(), m)
	writeWords(t, fs, "/in", []string{"a b c"})
	e, _ := NewEngine(fs, spec, m, Options{})
	res, err := e.Submit(wordCountJob("/in", "/out", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Init < 35*time.Millisecond {
		t.Fatalf("Init = %v, want >= 35ms (job init + task start)", res.Init)
	}
	if res.Wall < res.Init {
		t.Fatalf("Wall %v < Init %v", res.Wall, res.Init)
	}
}

func TestJobValidation(t *testing.T) {
	e, fs, _ := testEnv(t, 1, Options{})
	writeWords(t, fs, "/in", []string{"a"})
	good := wordCountJob("/in", "/out", false)
	bad := []*Job{
		{},
		{Name: "x", Input: []string{"/in"}, Output: "/o", Reduce: good.Reduce, NumReduce: 1, Ops: good.Ops}, // no map
		{Name: "x", Input: []string{"/in"}, Output: "/o", Map: good.Map, MapSrc: func(string, any, any, kv.Emit) error { return nil },
			Reduce: good.Reduce, NumReduce: 1, Ops: good.Ops}, // both maps
		{Name: "x", Input: []string{"/in"}, Output: "/o", Map: good.Map, NumReduce: 1, Ops: good.Ops},                    // no reduce
		{Name: "x", Input: []string{"/in"}, Output: "/o", Map: good.Map, Reduce: good.Reduce, Ops: good.Ops},             // no partitions
		{Name: "x", Input: []string{"/in"}, Output: "/o", Map: good.Map, Reduce: good.Reduce, NumReduce: 1},              // no ops
		{Name: "x", Input: nil, Output: "/o", Map: good.Map, Reduce: good.Reduce, NumReduce: 1, Ops: good.Ops},           // no input
		{Name: "x", Input: []string{"/in"}, Output: "", Map: good.Map, Reduce: good.Reduce, NumReduce: 1, Ops: good.Ops}, // no output
	}
	for i, j := range bad {
		if _, err := e.Submit(j); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	if _, err := e.Submit(good); err != nil {
		t.Fatalf("good job rejected: %v", err)
	}
}

func TestWordCountOnDiskBackedDFS(t *testing.T) {
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 10, Replication: 2, SpillDir: t.TempDir()}, spec.IDs(), m)
	e, err := NewEngine(fs, spec, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = "spill test words spill"
	}
	writeWords(t, fs, "/in", lines)
	if _, err := e.Submit(wordCountJob("/in", "/out", true)); err != nil {
		t.Fatal(err)
	}
	counts := readCounts(t, fs, "/out")
	if counts["spill"] != 100 || counts["test"] != 50 {
		t.Fatalf("disk-backed counts wrong: %v", counts)
	}
}

func TestJobSurvivesDatanodeFailure(t *testing.T) {
	// The input's primary replica holder dies before the job runs; map
	// tasks must read from surviving replicas.
	e, fs, _ := testEnv(t, 3, Options{LocalityAware: true})
	writeWords(t, fs, "/in", []string{"a b c", "c d", "a a"})
	fs.FailNode("worker-0")
	if _, err := e.Submit(wordCountJob("/in", "/out", false)); err != nil {
		t.Fatal(err)
	}
	counts := readCounts(t, fs, "/out")
	if counts["a"] != 3 || counts["c"] != 2 {
		t.Fatalf("wrong counts after datanode failure: %v", counts)
	}
}

func TestMissingInput(t *testing.T) {
	e, _, _ := testEnv(t, 1, Options{})
	if _, err := e.Submit(wordCountJob("/nope", "/out", false)); err == nil {
		t.Fatal("expected error for missing input")
	}
}

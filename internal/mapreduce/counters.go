package mapreduce

import (
	"sort"
	"sync"

	"imapreduce/internal/kv"
)

// Counters are Hadoop-style user counters: map and reduce functions
// increment them through the *WithCounters job variants, and the engine
// aggregates them per job with Hadoop's winner-only semantics — a
// counter update only lands if its task attempt is the one whose output
// is used, so retries and speculative backups never double-count.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the counter's value (0 if never written).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the counter names, sorted.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for n := range c.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// merge folds a winning attempt's counters into the job totals.
func (c *Counters) merge(from *Counters) {
	if c == nil || from == nil {
		return
	}
	from.mu.Lock()
	snapshot := make(map[string]int64, len(from.m))
	for k, v := range from.m {
		snapshot[k] = v
	}
	from.mu.Unlock()
	c.mu.Lock()
	for k, v := range snapshot {
		c.m[k] += v
	}
	c.mu.Unlock()
}

// MapCounterFunc is a map operation with access to attempt-local
// counters.
type MapCounterFunc func(c *Counters, key, value any, emit kv.Emit) error

// ReduceCounterFunc is a reduce operation with access to attempt-local
// counters.
type ReduceCounterFunc func(c *Counters, key any, values []any, emit kv.Emit) error

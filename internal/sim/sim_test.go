package sim

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(3, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("end time %f", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var at float64
	e.After(1, func() {
		e.After(2, func() { at = e.Now() })
	})
	e.Run()
	if at != 3 {
		t.Fatalf("nested After fired at %f, want 3", at)
	}
}

func TestPastEventsClamp(t *testing.T) {
	e := NewEngine()
	var fired float64 = -1
	e.At(5, func() {
		e.At(1, func() { fired = e.Now() }) // in the past: clamp to now
	})
	e.Run()
	if fired != 5 {
		t.Fatalf("past event fired at %f, want 5", fired)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-3, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative delay mishandled: now=%f", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	e.At(10, func() { count++ })
	e.RunUntil(5)
	if count != 2 || e.Now() != 5 {
		t.Fatalf("count=%d now=%f", count, e.Now())
	}
	e.Run()
	if count != 3 {
		t.Fatalf("remaining event lost")
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	var ends []float64
	for i := 0; i < 3; i++ {
		r.Use(2, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []float64{2, 4, 6}
	for i, w := range want {
		if math.Abs(ends[i]-w) > 1e-9 {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(2)
	var ends []float64
	for i := 0; i < 4; i++ {
		r.Use(3, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	// Two waves of two: finish at 3,3,6,6.
	want := []float64{3, 3, 6, 6}
	for i, w := range want {
		if math.Abs(ends[i]-w) > 1e-9 {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFOQueue(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Use(1, func() { order = append(order, i) })
	}
	if r.InUse() != 1 || r.Queued() != 4 {
		t.Fatalf("InUse=%d Queued=%d", r.InUse(), r.Queued())
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestAcquireManualRelease(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	got := false
	r.Acquire(func(release func()) {
		e.After(7, func() {
			release()
		})
	})
	r.Acquire(func(release func()) {
		got = true
		if e.Now() != 7 {
			t.Errorf("second acquire at %f, want 7", e.Now())
		}
		release()
	})
	e.Run()
	if !got {
		t.Fatal("second acquire never ran")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	r.Acquire(func(release func()) {
		release()
		release()
	})
	e.Run()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().NewResource(0)
}

// A small end-to-end model: 10 tasks, 2 slots, heterogeneous durations —
// checks the makespan equals a hand-computed LPT-free FCFS schedule.
func TestSlotScheduleMakespan(t *testing.T) {
	e := NewEngine()
	slots := e.NewResource(2)
	durs := []float64{4, 3, 2, 2, 1}
	for _, d := range durs {
		slots.Use(d, nil)
	}
	end := e.Run()
	// FCFS: slot A gets 4, slot B gets 3; then B takes 2 (ends 5), A takes 2
	// (ends 6), B takes 1 (ends 6).
	if math.Abs(end-6) > 1e-9 {
		t.Fatalf("makespan %f, want 6", end)
	}
}

// Package sim is a small deterministic discrete-event simulation kernel:
// a virtual clock, an event heap, and capacity-limited FCFS resources.
// The EC2-scale experiments (internal/simcluster) are built on it.
//
// Time is float64 seconds of virtual time. Events scheduled for the same
// instant fire in scheduling order, making runs fully deterministic.
package sim

import "container/heap"

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine owns the clock and the pending-event queue.
type Engine struct {
	now  float64
	heap eventHeap
	seq  int64
}

// NewEngine returns an engine at time 0 with no events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (clamped to now if in the past).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(event)
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for e.heap.Len() > 0 && e.heap[0].t <= t {
		ev := heap.Pop(&e.heap).(event)
		e.now = ev.t
		ev.fn()
	}
	if t > e.now {
		e.now = t
	}
}

// Resource is a capacity-limited FCFS server: at most Capacity
// concurrent holders; further requests queue in arrival order. It models
// task slots on a worker.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	queue    []func()
}

// NewResource creates a resource with the given capacity on e.
func (e *Engine) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire runs fn when a unit of capacity is available, passing a
// release function that must be called exactly once.
func (r *Resource) Acquire(fn func(release func())) {
	start := func() {
		r.busy++
		released := false
		fn(func() {
			if released {
				panic("sim: double release")
			}
			released = true
			r.busy--
			r.dispatch()
		})
	}
	if r.busy < r.capacity {
		start()
		return
	}
	r.queue = append(r.queue, start)
}

func (r *Resource) dispatch() {
	for r.busy < r.capacity && len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next()
	}
}

// Use acquires a unit, holds it for d seconds of virtual time, then
// releases and calls done (which may be nil).
func (r *Resource) Use(d float64, done func()) {
	r.Acquire(func(release func()) {
		r.eng.After(d, func() {
			release()
			if done != nil {
				done()
			}
		})
	})
}

// InUse returns the number of busy capacity units.
func (r *Resource) InUse() int { return r.busy }

// Queued returns the number of waiting requests.
func (r *Resource) Queued() int { return len(r.queue) }

package kv

import (
	"sync"
	"unsafe"
)

// Slab is a reusable decode arena. DecodePairsSlab carves its []Pair
// result out of a pooled block instead of allocating one per chunk, and
// boxes every scalar key/value into arena cells instead of one heap
// allocation per value — the 1.5-allocs-per-pair cost that dominated
// the receive path. Strings are interned into a byte arena.
//
// Ownership protocol (mirrors the sendShuffle buffer-ownership rule):
// the caller that acquired the slab owns everything decoded through it
// until it releases the slab, and must release it exactly once.
//
//   - Release recycles every block. All pairs AND all boxed values
//     decoded through the slab become invalid — the next decode
//     overwrites them in place. Only for callers with strictly bounded
//     lifetimes (benchmarks, tests, decode-verify-discard loops).
//
//   - ReleaseRetainValues recycles only the []Pair backing and detaches
//     the value arenas to the garbage collector. The pair slices become
//     invalid, but boxed keys and values stay valid forever — the mode
//     the engine uses, because decoded values escape into accumulators,
//     user reduce state, and re-emitted pairs.
//
// A Slab is not safe for concurrent use; the pool it comes from is.
type Slab struct {
	pairs []Pair   // current []Pair block; takePairs carves from it
	words []uint64 // scalar cell arena (one 8-byte cell per boxed scalar)
	strs  []string // string header arena
	bts   []byte   // string byte arena

	np, nw, ns, nb int // used prefix of each block

	released bool
}

// Arena block sizing: grown geometrically, never shrunk while attached.
const (
	minPairBlock = 512
	minWordBlock = 1024
	minStrBlock  = 256
	minByteBlock = 4096
)

var slabPool = sync.Pool{New: func() any { return new(Slab) }}

// AcquireSlab returns a decode arena from the shared pool. Pair it with
// exactly one Release or ReleaseRetainValues.
func AcquireSlab() *Slab {
	s := slabPool.Get().(*Slab)
	s.released = false
	return s
}

// Release recycles the slab and every block it owns. Everything decoded
// through it — pair slices and boxed values alike — is invalid from
// this point on.
func (s *Slab) Release() {
	s.recycle(false)
}

// ReleaseRetainValues recycles the slab's []Pair backing but hands the
// value arenas to the garbage collector, so boxed keys and values that
// escaped into longer-lived structures stay valid indefinitely. The
// decoded pair slices themselves must not be used again.
func (s *Slab) ReleaseRetainValues() {
	s.recycle(true)
}

func (s *Slab) recycle(retainValues bool) {
	if s.released {
		panic("kv: slab released twice")
	}
	s.released = true
	// Drop the pair entries' references into the value arenas: the pair
	// block is about to be reused and must not pin retired arenas (or,
	// in the retain-values case, the detached ones) beyond this point.
	clear(s.pairs[:s.np])
	if retainValues {
		s.words, s.strs, s.bts = nil, nil, nil
	}
	s.np, s.nw, s.ns, s.nb = 0, 0, 0, 0
	slabPool.Put(s)
}

// emptyPairs keeps zero-count decodes identical to DecodePairs, which
// returns an empty, non-nil slice.
var emptyPairs = make([]Pair, 0)

// takePairs returns a zeroed, full-capacity []Pair of length n carved
// from the pair block.
func (s *Slab) takePairs(n int) []Pair {
	if n == 0 {
		return emptyPairs
	}
	if len(s.pairs)-s.np < n {
		c := 2 * len(s.pairs)
		if c < minPairBlock {
			c = minPairBlock
		}
		if c < n {
			c = n
		}
		s.pairs, s.np = make([]Pair, c), 0
	}
	out := s.pairs[s.np : s.np+n : s.np+n]
	s.np += n
	return out
}

// word returns the next free 8-byte scalar cell.
func (s *Slab) word() *uint64 {
	if s.nw == len(s.words) {
		c := 2 * len(s.words)
		if c < minWordBlock {
			c = minWordBlock
		}
		s.words, s.nw = make([]uint64, c), 0
	}
	p := &s.words[s.nw]
	s.nw++
	return p
}

// strCell returns the next free string header cell.
func (s *Slab) strCell() *string {
	if s.ns == len(s.strs) {
		c := 2 * len(s.strs)
		if c < minStrBlock {
			c = minStrBlock
		}
		s.strs, s.ns = make([]string, c), 0
	}
	p := &s.strs[s.ns]
	s.ns++
	return p
}

// internBytes copies src into the byte arena and returns it as a string
// aliasing arena memory.
func (s *Slab) internBytes(src []byte) string {
	if len(src) == 0 {
		return ""
	}
	if len(s.bts)-s.nb < len(src) {
		c := 2 * len(s.bts)
		if c < minByteBlock {
			c = minByteBlock
		}
		if c < len(src) {
			c = len(src)
		}
		s.bts, s.nb = make([]byte, c), 0
	}
	dst := s.bts[s.nb : s.nb+len(src)]
	copy(dst, src)
	s.nb += len(src)
	return unsafe.String(&dst[0], len(dst))
}

// Interface boxing without per-value heap allocation: an eface is a
// (type, data) pointer pair, so pointing data at an arena cell that
// already holds the value produces the same interface value the
// compiler's implicit boxing would, minus the allocation. The type
// words are captured once from ordinarily-boxed samples.
type eface struct {
	typ, data unsafe.Pointer
}

func typePtrOf(v any) unsafe.Pointer { return (*eface)(unsafe.Pointer(&v)).typ }

var (
	typBool    = typePtrOf(false)
	typInt     = typePtrOf(int(0))
	typInt32   = typePtrOf(int32(0))
	typInt64   = typePtrOf(int64(0))
	typUint64  = typePtrOf(uint64(0))
	typFloat32 = typePtrOf(float32(0))
	typFloat64 = typePtrOf(float64(0))
	typString  = typePtrOf("")
)

// boxAt builds the interface value whose type word is typ and whose
// data word points at data. data must point at memory holding a value
// of exactly that type.
func boxAt(typ, data unsafe.Pointer) (v any) {
	e := (*eface)(unsafe.Pointer(&v))
	e.typ = typ
	e.data = data
	return
}

// Box helpers, exported so custom ValueCodec.DecodeSlab implementations
// compose from the same cells the builtin decodings use. Each boxed
// value consumes one arena cell and follows the slab's release rules.

// BoxBool boxes v in arena memory.
func (s *Slab) BoxBool(v bool) any {
	p := s.word()
	*(*bool)(unsafe.Pointer(p)) = v
	return boxAt(typBool, unsafe.Pointer(p))
}

// BoxInt boxes v in arena memory.
func (s *Slab) BoxInt(v int) any {
	p := s.word()
	*(*int)(unsafe.Pointer(p)) = v
	return boxAt(typInt, unsafe.Pointer(p))
}

// BoxInt32 boxes v in arena memory.
func (s *Slab) BoxInt32(v int32) any {
	p := s.word()
	*(*int32)(unsafe.Pointer(p)) = v
	return boxAt(typInt32, unsafe.Pointer(p))
}

// BoxInt64 boxes v in arena memory.
func (s *Slab) BoxInt64(v int64) any {
	p := s.word()
	*(*int64)(unsafe.Pointer(p)) = v
	return boxAt(typInt64, unsafe.Pointer(p))
}

// BoxUint64 boxes v in arena memory.
func (s *Slab) BoxUint64(v uint64) any {
	p := s.word()
	*p = v
	return boxAt(typUint64, unsafe.Pointer(p))
}

// BoxFloat32 boxes v in arena memory.
func (s *Slab) BoxFloat32(v float32) any {
	p := s.word()
	*(*float32)(unsafe.Pointer(p)) = v
	return boxAt(typFloat32, unsafe.Pointer(p))
}

// BoxFloat64 boxes v in arena memory.
func (s *Slab) BoxFloat64(v float64) any {
	p := s.word()
	*(*float64)(unsafe.Pointer(p)) = v
	return boxAt(typFloat64, unsafe.Pointer(p))
}

// BoxString copies v's bytes into the byte arena and boxes the interned
// string in a header cell.
func (s *Slab) BoxString(v string) any {
	return s.BoxStringBytes(unsafe.Slice(unsafe.StringData(v), len(v)))
}

// BoxStringBytes interns src (typically a window of a wire frame that
// will be reused) as an arena string and boxes it.
func (s *Slab) BoxStringBytes(src []byte) any {
	p := s.strCell()
	*p = s.internBytes(src)
	return boxAt(typString, unsafe.Pointer(p))
}

//go:build race

package kv

// raceDetectorEnabled reports whether the race detector is compiled in;
// allocation-budget assertions are skipped under it because its
// instrumentation allocates on paths that are allocation-free otherwise.
const raceDetectorEnabled = true

package kv

import "encoding/gob"

// RegisterWireType registers a concrete type carried inside Pair.Key or
// Pair.Value with gob, so that records survive the TCP transport.
// In-process transports pass values by reference and do not need it.
func RegisterWireType(v any) {
	gob.Register(v)
}

func init() {
	// Types every job may carry. Algorithm packages register their own
	// record types in their init functions. Scalars must be registered
	// explicitly because they travel inside interface-typed fields.
	gob.Register(int(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float32(0))
	gob.Register(float64(0))
	gob.Register(string(""))
	gob.Register(bool(false))
	gob.Register(Pair{})
	gob.Register([]Pair{})
	gob.Register(Group{})
	gob.Register([]int32{})
	gob.Register([]int64{})
	gob.Register([]float32{})
	gob.Register([]float64{})
	gob.Register([]byte{})
}

package kv

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// randValue draws one wire-encodable value, covering every arena-boxed
// scalar shape, the string intern path, the slice fallback path, and
// (shallowly) nested pair lists.
func randValue(rng *rand.Rand, depth int) any {
	switch rng.Intn(12) {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 1
	case 2:
		return int(rng.Int63()) - (1 << 40)
	case 3:
		return int32(rng.Int31() - (1 << 20))
	case 4:
		return rng.Int63() - (1 << 50)
	case 5:
		return rng.Uint64()
	case 6:
		return float32(rng.NormFloat64())
	case 7:
		return rng.NormFloat64()
	case 8:
		return strings.Repeat("s", rng.Intn(64)) + fmt.Sprint(rng.Int63())
	case 9:
		out := make([]float64, rng.Intn(4))
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	case 10:
		if depth > 0 {
			return randPairs(rng, rng.Intn(3), depth-1)
		}
		return int64(7)
	default:
		return int64(rng.Intn(1 << 20))
	}
}

func randPairs(rng *rand.Rand, n, depth int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{Key: randValue(rng, 0), Value: randValue(rng, depth)}
	}
	return out
}

// TestDecodePairsSlabRoundTrip checks the arena decode against the
// allocating decode across many rounds that reuse one released slab —
// the reuse-after-release corruption check: round k's decode must be
// unaffected by rounds 1..k-1 having used (and released) the same
// arena blocks.
func TestDecodePairsSlabRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := AcquireSlab()
	for round := 0; round < 200; round++ {
		src := randPairs(rng, rng.Intn(300), 1)
		enc, ok := AppendPairs(nil, src)
		if !ok {
			t.Fatalf("round %d: encode refused", round)
		}
		want, wn, err := DecodePairs(enc)
		if err != nil {
			t.Fatalf("round %d: reference decode: %v", round, err)
		}
		got, gn, err := DecodePairsSlab(enc, s)
		if err != nil {
			t.Fatalf("round %d: slab decode: %v", round, err)
		}
		if gn != wn {
			t.Fatalf("round %d: consumed %d bytes, reference consumed %d", round, gn, wn)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: slab decode diverges:\n got %v\nwant %v", round, got, want)
		}
		if round%2 == 0 {
			s.Release()
		} else {
			s.ReleaseRetainValues()
		}
		s = AcquireSlab()
	}
	s.Release()
}

// TestSlabReleaseRetainValues checks the engine's release mode: pairs
// copied out of a slab-decoded chunk must stay valid after the slab is
// recycled and reused by later decodes that overwrite its pair block.
func TestSlabReleaseRetainValues(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randPairs(rng, 500, 1)
	enc, ok := AppendPairs(nil, src)
	if !ok {
		t.Fatal("encode refused")
	}
	want, _, err := DecodePairs(enc)
	if err != nil {
		t.Fatal(err)
	}

	s := AcquireSlab()
	decoded, _, err := DecodePairsSlab(enc, s)
	if err != nil {
		t.Fatal(err)
	}
	// The accumulator pattern: copy the Pair structs out, then release
	// the chunk's slab with values retained.
	kept := append([]Pair(nil), decoded...)
	s.ReleaseRetainValues()

	// Grind the recycled slab through decodes that trample the pair
	// block and fill fresh value arenas.
	for i := 0; i < 50; i++ {
		s = AcquireSlab()
		if _, _, err := DecodePairsSlab(enc, s); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}

	if !reflect.DeepEqual(kept, want) {
		t.Fatalf("retained values corrupted after slab reuse:\n got %v\nwant %v", kept, want)
	}
}

// TestSlabDoubleReleasePanics pins the ownership contract: releasing a
// slab twice is a bug, not a silent double-free into the pool.
func TestSlabDoubleReleasePanics(t *testing.T) {
	s := AcquireSlab()
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second release did not panic")
		}
	}()
	s.Release()
}

// TestSlabPoolStress hammers the shared slab pool from concurrent
// goroutines, each doing full decode/verify/release cycles — run under
// -race this checks the handoff discipline end to end.
func TestSlabPoolStress(t *testing.T) {
	const workers = 8
	iters := 300
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				src := randPairs(rng, 1+rng.Intn(200), 1)
				enc, ok := AppendPairs(nil, src)
				if !ok {
					errs <- fmt.Errorf("encode refused")
					return
				}
				want, _, err := DecodePairs(enc)
				if err != nil {
					errs <- err
					return
				}
				s := AcquireSlab()
				got, _, err := DecodePairsSlab(enc, s)
				if err != nil {
					errs <- err
					s.Release()
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("worker %d iter %d: decode diverges", seed, i)
					s.Release()
					return
				}
				if i%3 == 0 {
					s.ReleaseRetainValues()
				} else {
					s.Release()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDecodePairsAllocBudget is the CI gate on the receive path's
// steady-state allocation count: a full 4096-pair scalar decode through
// a recycled slab must stay within a handful of allocations (occasional
// pool misses after a GC are amortized across the runs). The allocating
// path measured 6132 allocs for the same input.
func TestDecodePairsAllocBudget(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race sweep")
	}
	const budget = 8.0
	enc, ok := AppendPairs(nil, benchPairs(4096, 512))
	if !ok {
		t.Fatal("encode refused")
	}
	// Warm the pool so the measured runs see steady state.
	s := AcquireSlab()
	if _, _, err := DecodePairsSlab(enc, s); err != nil {
		t.Fatal(err)
	}
	s.Release()
	allocs := testing.AllocsPerRun(20, func() {
		s := AcquireSlab()
		ps, _, err := DecodePairsSlab(enc, s)
		if err != nil || len(ps) != 4096 {
			panic(fmt.Sprintf("decode failed: %v (%d pairs)", err, len(ps)))
		}
		s.Release()
	})
	if allocs > budget {
		t.Fatalf("slab decode of 4096 pairs: %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

func BenchmarkDecodePairsSlab(b *testing.B) {
	ops := OpsFor[int64, float64](nil)
	buf, _ := ops.EncodePairs(nil, benchPairs(1<<12, 1<<12))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := AcquireSlab()
		if _, err := ops.DecodePairsSlab(buf, s); err != nil {
			b.Fatal(err)
		}
		s.Release()
	}
}

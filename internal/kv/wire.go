package kv

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Binary value encoding — the reflection-free fast path records take
// over the TCP transport instead of gob. Every value is one uvarint
// type tag followed by a tag-specific payload; pair lists are a uvarint
// count followed by key/value encodings. Builtin scalars and the common
// slice shapes are handled inline; composite record types register a
// ValueCodec (see RegisterValueCodec). Tags are assigned in process-
// local registration order, which is consistent across endpoints
// because every endpoint of a run lives in one process — the same
// assumption the gob registry already makes.

// Builtin wire tags. Custom codecs start at customTagBase.
const (
	tagNil uint64 = iota
	tagBool
	tagInt
	tagInt32
	tagInt64
	tagUint64
	tagFloat32
	tagFloat64
	tagString
	tagBytes
	tagInt32s
	tagInt64s
	tagFloat32s
	tagFloat64s
	tagPairs

	customTagBase uint64 = 32
)

// ValueCodec encodes and decodes one concrete Go type for the binary
// wire format.
type ValueCodec struct {
	// Append appends v's encoding to buf. It is called only with values
	// of the registered dynamic type. ok=false (e.g. a nested any field
	// holds an unregistered type) makes the whole chunk fall back to gob.
	Append func(buf []byte, v any) ([]byte, bool)
	// Decode reads one value back and returns it with the number of
	// bytes consumed.
	Decode func(data []byte) (any, int, error)
	// DecodeSlab, when set, is the arena-aware variant of Decode used by
	// DecodePairsSlab: scratch and boxed scalars should come from the
	// slab's Box helpers so a steady-state decode allocates nothing.
	// Optional; absent, slab decodes fall back to Decode for this type.
	DecodeSlab func(data []byte, s *Slab) (any, int, error)
}

var wireReg = struct {
	sync.RWMutex
	byType map[reflect.Type]uint64
	codecs []ValueCodec
}{byType: make(map[reflect.Type]uint64)}

// RegisterValueCodec registers the binary codec for sample's concrete
// type. Like gob.Register it is meant for init functions; registering
// the same type twice panics.
func RegisterValueCodec(sample any, c ValueCodec) {
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("kv: RegisterValueCodec with nil sample")
	}
	if c.Append == nil || c.Decode == nil {
		panic("kv: RegisterValueCodec with incomplete codec")
	}
	wireReg.Lock()
	defer wireReg.Unlock()
	if _, dup := wireReg.byType[t]; dup {
		panic(fmt.Sprintf("kv: value codec for %v registered twice", t))
	}
	wireReg.byType[t] = customTagBase + uint64(len(wireReg.codecs))
	wireReg.codecs = append(wireReg.codecs, c)
}

func lookupCodec(t reflect.Type) (uint64, ValueCodec, bool) {
	wireReg.RLock()
	defer wireReg.RUnlock()
	tag, ok := wireReg.byType[t]
	if !ok {
		return 0, ValueCodec{}, false
	}
	return tag, wireReg.codecs[tag-customTagBase], true
}

func codecFor(tag uint64) (ValueCodec, bool) {
	wireReg.RLock()
	defer wireReg.RUnlock()
	idx := tag - customTagBase
	if idx >= uint64(len(wireReg.codecs)) {
		return ValueCodec{}, false
	}
	return wireReg.codecs[idx], true
}

// Append helpers, exported so custom codecs compose from the same
// primitives the builtin encodings use.

// AppendUvarint appends x in unsigned varint encoding.
func AppendUvarint(buf []byte, x uint64) []byte { return binary.AppendUvarint(buf, x) }

// AppendVarint appends x in zigzag varint encoding.
func AppendVarint(buf []byte, x int64) []byte { return binary.AppendVarint(buf, x) }

// AppendFloat64 appends f as 8 fixed little-endian bytes.
func AppendFloat64(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// AppendFloat32 appends f as 4 fixed little-endian bytes.
func AppendFloat32(buf []byte, f float32) []byte {
	return binary.LittleEndian.AppendUint32(buf, math.Float32bits(f))
}

// Uvarint reads an unsigned varint, returning the value and bytes
// consumed.
func Uvarint(data []byte) (uint64, int, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("kv: truncated uvarint")
	}
	return x, n, nil
}

// Varint reads a zigzag varint.
func Varint(data []byte) (int64, int, error) {
	x, n := binary.Varint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("kv: truncated varint")
	}
	return x, n, nil
}

// Float64At reads 8 fixed little-endian bytes.
func Float64At(data []byte) (float64, int, error) {
	if len(data) < 8 {
		return 0, 0, fmt.Errorf("kv: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), 8, nil
}

// Float32At reads 4 fixed little-endian bytes.
func Float32At(data []byte) (float32, int, error) {
	if len(data) < 4 {
		return 0, 0, fmt.Errorf("kv: truncated float32")
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(data)), 4, nil
}

// Untagged slice helpers for custom codecs: a uvarint length followed
// by the elements. Zero length decodes to nil, matching gob's treatment
// of empty slices.

// AppendInt32Slice appends xs as uvarint length + varint elements.
func AppendInt32Slice(buf []byte, xs []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

// Int32SliceAt reads an AppendInt32Slice encoding.
func Int32SliceAt(data []byte) ([]int32, int, error) {
	l, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if l == 0 {
		return nil, n, nil
	}
	out := make([]int32, l)
	for i := range out {
		x, m, err := Varint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		out[i], n = int32(x), n+m
	}
	return out, n, nil
}

// AppendFloat32Slice appends xs as uvarint length + fixed 4-byte
// elements.
func AppendFloat32Slice(buf []byte, xs []float32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = AppendFloat32(buf, x)
	}
	return buf
}

// Float32SliceAt reads an AppendFloat32Slice encoding.
func Float32SliceAt(data []byte) ([]float32, int, error) {
	l, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if l == 0 {
		return nil, n, nil
	}
	if uint64(len(data)-n) < 4*l {
		return nil, 0, fmt.Errorf("kv: truncated float32 slice")
	}
	out := make([]float32, l)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[n:]))
		n += 4
	}
	return out, n, nil
}

// AppendFloat64Slice appends xs as uvarint length + fixed 8-byte
// elements.
func AppendFloat64Slice(buf []byte, xs []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = AppendFloat64(buf, x)
	}
	return buf
}

// Float64SliceAt reads an AppendFloat64Slice encoding.
func Float64SliceAt(data []byte) ([]float64, int, error) {
	l, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if l == 0 {
		return nil, n, nil
	}
	if uint64(len(data)-n) < 8*l {
		return nil, 0, fmt.Errorf("kv: truncated float64 slice")
	}
	out := make([]float64, l)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[n:]))
		n += 8
	}
	return out, n, nil
}

// AppendValue appends the tagged binary encoding of v. ok=false means
// v's dynamic type (or a type nested inside it) has no codec and the
// caller must fall back to gob; buf is returned truncated to its
// original length in that case.
func AppendValue(buf []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(buf, byte(tagNil)), true
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, byte(tagBool), b), true
	case int:
		return binary.AppendVarint(append(buf, byte(tagInt)), int64(x)), true
	case int32:
		return binary.AppendVarint(append(buf, byte(tagInt32)), int64(x)), true
	case int64:
		return binary.AppendVarint(append(buf, byte(tagInt64)), x), true
	case uint64:
		return binary.AppendUvarint(append(buf, byte(tagUint64)), x), true
	case float32:
		return AppendFloat32(append(buf, byte(tagFloat32)), x), true
	case float64:
		return AppendFloat64(append(buf, byte(tagFloat64)), x), true
	case string:
		buf = binary.AppendUvarint(append(buf, byte(tagString)), uint64(len(x)))
		return append(buf, x...), true
	case []byte:
		buf = binary.AppendUvarint(append(buf, byte(tagBytes)), uint64(len(x)))
		return append(buf, x...), true
	case []int32:
		buf = binary.AppendUvarint(append(buf, byte(tagInt32s)), uint64(len(x)))
		for _, e := range x {
			buf = binary.AppendVarint(buf, int64(e))
		}
		return buf, true
	case []int64:
		buf = binary.AppendUvarint(append(buf, byte(tagInt64s)), uint64(len(x)))
		for _, e := range x {
			buf = binary.AppendVarint(buf, e)
		}
		return buf, true
	case []float32:
		buf = binary.AppendUvarint(append(buf, byte(tagFloat32s)), uint64(len(x)))
		for _, e := range x {
			buf = AppendFloat32(buf, e)
		}
		return buf, true
	case []float64:
		buf = binary.AppendUvarint(append(buf, byte(tagFloat64s)), uint64(len(x)))
		for _, e := range x {
			buf = AppendFloat64(buf, e)
		}
		return buf, true
	case []Pair:
		start := len(buf)
		buf, ok := AppendPairs(append(buf, byte(tagPairs)), x)
		if !ok {
			return buf[:start], false
		}
		return buf, true
	default:
		start := len(buf)
		tag, c, ok := lookupCodec(reflect.TypeOf(v))
		if !ok {
			return buf, false
		}
		buf, ok = c.Append(binary.AppendUvarint(buf, tag), v)
		if !ok {
			return buf[:start], false
		}
		return buf, true
	}
}

// DecodeValue reads one tagged value, returning it and the bytes
// consumed.
func DecodeValue(data []byte) (any, int, error) {
	tag, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	rest := data[n:]
	switch tag {
	case tagNil:
		return nil, n, nil
	case tagBool:
		if len(rest) < 1 {
			return nil, 0, fmt.Errorf("kv: truncated bool")
		}
		return rest[0] != 0, n + 1, nil
	case tagInt:
		x, m, err := Varint(rest)
		return int(x), n + m, err
	case tagInt32:
		x, m, err := Varint(rest)
		return int32(x), n + m, err
	case tagInt64:
		x, m, err := Varint(rest)
		return x, n + m, err
	case tagUint64:
		x, m, err := Uvarint(rest)
		return x, n + m, err
	case tagFloat32:
		x, m, err := Float32At(rest)
		return x, n + m, err
	case tagFloat64:
		x, m, err := Float64At(rest)
		return x, n + m, err
	case tagString:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(rest)-m) < l {
			return nil, 0, fmt.Errorf("kv: truncated string")
		}
		return string(rest[m : m+int(l)]), n + m + int(l), nil
	case tagBytes:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(rest)-m) < l {
			return nil, 0, fmt.Errorf("kv: truncated bytes")
		}
		out := make([]byte, l)
		copy(out, rest[m:m+int(l)])
		return out, n + m + int(l), nil
	case tagInt32s:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		out := make([]int32, l)
		for i := range out {
			x, k, err := Varint(rest[m:])
			if err != nil {
				return nil, 0, err
			}
			out[i], m = int32(x), m+k
		}
		return out, n + m, nil
	case tagInt64s:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		out := make([]int64, l)
		for i := range out {
			x, k, err := Varint(rest[m:])
			if err != nil {
				return nil, 0, err
			}
			out[i], m = x, m+k
		}
		return out, n + m, nil
	case tagFloat32s:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		out := make([]float32, l)
		for i := range out {
			x, k, err := Float32At(rest[m:])
			if err != nil {
				return nil, 0, err
			}
			out[i], m = x, m+k
		}
		return out, n + m, nil
	case tagFloat64s:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		out := make([]float64, l)
		for i := range out {
			x, k, err := Float64At(rest[m:])
			if err != nil {
				return nil, 0, err
			}
			out[i], m = x, m+k
		}
		return out, n + m, nil
	case tagPairs:
		ps, m, err := DecodePairs(rest)
		return ps, n + m, err
	default:
		c, ok := codecFor(tag)
		if !ok {
			return nil, 0, fmt.Errorf("kv: unknown wire tag %d", tag)
		}
		v, m, err := c.Decode(rest)
		return v, n + m, err
	}
}

// DecodeValueSlab is DecodeValue with arena allocation: scalar values
// are boxed into s's cells and strings interned into its byte arena, so
// the steady-state cost is zero heap allocations. Tags without an arena
// path (byte/slice shapes, codecs without DecodeSlab) fall back to the
// allocating DecodeValue — correctness never depends on slab support.
// Everything returned follows s's release rules (see Slab).
func DecodeValueSlab(data []byte, s *Slab) (any, int, error) {
	tag, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	rest := data[n:]
	switch tag {
	case tagNil:
		return nil, n, nil
	case tagBool:
		if len(rest) < 1 {
			return nil, 0, fmt.Errorf("kv: truncated bool")
		}
		return s.BoxBool(rest[0] != 0), n + 1, nil
	case tagInt:
		x, m, err := Varint(rest)
		if err != nil {
			return nil, 0, err
		}
		return s.BoxInt(int(x)), n + m, nil
	case tagInt32:
		x, m, err := Varint(rest)
		if err != nil {
			return nil, 0, err
		}
		return s.BoxInt32(int32(x)), n + m, nil
	case tagInt64:
		x, m, err := Varint(rest)
		if err != nil {
			return nil, 0, err
		}
		return s.BoxInt64(x), n + m, nil
	case tagUint64:
		x, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		return s.BoxUint64(x), n + m, nil
	case tagFloat32:
		x, m, err := Float32At(rest)
		if err != nil {
			return nil, 0, err
		}
		return s.BoxFloat32(x), n + m, nil
	case tagFloat64:
		x, m, err := Float64At(rest)
		if err != nil {
			return nil, 0, err
		}
		return s.BoxFloat64(x), n + m, nil
	case tagString:
		l, m, err := Uvarint(rest)
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(rest)-m) < l {
			return nil, 0, fmt.Errorf("kv: truncated string")
		}
		return s.BoxStringBytes(rest[m : m+int(l)]), n + m + int(l), nil
	case tagPairs:
		// A nested pair list is a *value*, so it must survive
		// ReleaseRetainValues — which recycles the slab's pair block. The
		// slice header therefore comes from the heap; only its elements'
		// keys and values use the (retainable) value arenas.
		ps, m, err := decodeNestedPairsSlab(rest, s)
		if err != nil {
			return nil, 0, err
		}
		return ps, n + m, nil
	default:
		if tag >= customTagBase {
			if c, ok := codecFor(tag); ok && c.DecodeSlab != nil {
				v, m, err := c.DecodeSlab(rest, s)
				return v, n + m, err
			}
		}
		// Slice shapes and slab-unaware codecs: the allocating path.
		return DecodeValue(data)
	}
}

// decodeNestedPairsSlab decodes a pair list that appears as a value
// inside another pair list. The slice backing is heap-allocated (values
// outlive the slab's pair block under ReleaseRetainValues) while the
// elements still box through the slab's value arenas.
func decodeNestedPairsSlab(data []byte, s *Slab) ([]Pair, int, error) {
	count, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(data)) {
		return nil, 0, fmt.Errorf("kv: pair count %d exceeds frame", count)
	}
	ps := make([]Pair, count)
	for i := range ps {
		k, m, err := DecodeValueSlab(data[n:], s)
		if err != nil {
			return nil, 0, err
		}
		n += m
		v, m, err := DecodeValueSlab(data[n:], s)
		if err != nil {
			return nil, 0, err
		}
		n += m
		ps[i] = Pair{Key: k, Value: v}
	}
	return ps, n, nil
}

// AppendPairs appends the binary encoding of ps: a uvarint count and
// each pair's key/value encodings. ok=false means some pair carries an
// unregistered type; buf is truncated back to its original length and
// the caller falls back to gob for the whole list.
func AppendPairs(buf []byte, ps []Pair) ([]byte, bool) {
	start := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	for _, p := range ps {
		var ok bool
		if buf, ok = AppendValue(buf, p.Key); !ok {
			return buf[:start], false
		}
		if buf, ok = AppendValue(buf, p.Value); !ok {
			return buf[:start], false
		}
	}
	return buf, true
}

// DecodePairs reads an AppendPairs encoding back, returning the pairs
// and the bytes consumed.
func DecodePairs(data []byte) ([]Pair, int, error) {
	count, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(data)) {
		// Each encoded pair takes at least two bytes; a count beyond the
		// remaining length is corruption, not a huge allocation request.
		return nil, 0, fmt.Errorf("kv: pair count %d exceeds frame", count)
	}
	ps := make([]Pair, count)
	for i := range ps {
		k, m, err := DecodeValue(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		v, m, err := DecodeValue(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		ps[i] = Pair{Key: k, Value: v}
	}
	return ps, n, nil
}

// DecodePairsSlab reads an AppendPairs encoding into s: the pair list
// and the boxed keys/values all live in arena memory, so a decode that
// reuses a released slab allocates nothing in steady state. data is not
// retained — string payloads are copied into the arena. The result
// follows s's release rules (see Slab).
func DecodePairsSlab(data []byte, s *Slab) ([]Pair, int, error) {
	count, n, err := Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(data)) {
		// Each encoded pair takes at least two bytes; a count beyond the
		// remaining length is corruption, not a huge allocation request.
		return nil, 0, fmt.Errorf("kv: pair count %d exceeds frame", count)
	}
	ps := s.takePairs(int(count))
	for i := range ps {
		k, m, err := DecodeValueSlab(data[n:], s)
		if err != nil {
			return nil, 0, err
		}
		n += m
		v, m, err := DecodeValueSlab(data[n:], s)
		if err != nil {
			return nil, 0, err
		}
		n += m
		ps[i] = Pair{Key: k, Value: v}
	}
	return ps, n, nil
}

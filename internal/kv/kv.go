// Package kv provides the key-value record substrate shared by the
// baseline MapReduce engine and the iMapReduce engine: untyped pairs, the
// per-job operation bundle (hashing, ordering, byte sizing), and helpers
// to build that bundle from concrete Go types.
//
// The engines move records as kv.Pair with any-typed keys and values, the
// way Hadoop moves Writables; type safety is restored at the edges by the
// generic constructors (OpsFor, SizerFor) that algorithm packages use.
package kv

import (
	"cmp"
	"fmt"
	"hash/maphash"
	"slices"
	"sort"
)

// Pair is a single key-value record flowing between map and reduce tasks
// or stored in the distributed file system.
type Pair struct {
	Key   any
	Value any
}

// Group is a reduce-side group: one key with all values shuffled to it.
type Group struct {
	Key    any
	Values []any
}

// Emit is the callback map and reduce functions use to produce output
// records.
type Emit func(key, value any)

// Ops bundles the per-job operations the engines need to move records
// around without knowing their concrete types: partition hashing, output
// ordering, and byte-size estimation for communication accounting.
type Ops struct {
	// Hash maps a key to a uint64 used for partitioning. Must be
	// deterministic within a run and identical for the static and state
	// data of one job (iMapReduce joins them by partition).
	Hash func(key any) uint64
	// Less orders keys; used for deterministic output and for the
	// sorted-merge join of static and state data.
	Less func(a, b any) bool
	// KeySize and ValSize estimate serialized sizes in bytes. They feed
	// the shuffle/communication counters; they do not have to be exact,
	// only consistent.
	KeySize func(key any) int
	ValSize func(value any) int
	// Compare is the three-way form of Less. When set, GroupPairs and
	// SortPairs take the sort-based fast path. Optional; OpsFor fills it.
	Compare func(a, b any) int
	// EncodePairs and DecodePairs are the typed wire codec used by the
	// binary transport framing. EncodePairs appends the encoding of ps to
	// buf; ok=false means some record carries a type with no registered
	// codec and the transport must fall back to gob. Optional; OpsFor
	// fills both from the tagged codec registry (see wire.go).
	EncodePairs func(buf []byte, ps []Pair) ([]byte, bool)
	DecodePairs func(data []byte) ([]Pair, error)
	// DecodePairsSlab is the arena variant of DecodePairs: the result and
	// its boxed values live in s and follow s's release rules (see Slab).
	// Optional; OpsFor fills it.
	DecodePairsSlab func(data []byte, s *Slab) ([]Pair, error)
	// sortStable is the concrete-key-type stable sort installed by OpsFor;
	// it avoids the interface-compare indirection of Less/Compare.
	sortStable func(ps []Pair)
	// group is the concrete-key-type grouping installed by OpsFor: an
	// unstable sort over (key, index) with an index tie-break, so typed
	// comparisons inline and the 32-byte Pair structs never move.
	group func(ps []Pair) []Group
}

// PairSize returns the estimated serialized size of p under o.
func (o Ops) PairSize(p Pair) int {
	return o.KeySize(p.Key) + o.ValSize(p.Value)
}

// Partition returns the partition in [0, n) for key.
func (o Ops) Partition(key any, n int) int {
	if n <= 0 {
		panic("kv: Partition with non-positive partition count")
	}
	return int(o.Hash(key) % uint64(n))
}

// SortPairs orders ps by key (stable, so equal keys keep their relative
// value order). Ops built by OpsFor sort with a concrete-type comparator;
// hand-rolled Ops fall back to o.Less.
func (o Ops) SortPairs(ps []Pair) {
	switch {
	case o.sortStable != nil:
		o.sortStable(ps)
	case o.Compare != nil:
		slices.SortStableFunc(ps, func(a, b Pair) int { return o.Compare(a.Key, b.Key) })
	default:
		sort.SliceStable(ps, func(i, j int) bool { return o.Less(ps[i].Key, ps[j].Key) })
	}
}

var hashSeed = maphash.MakeSeed()

// HashOf hashes any comparable key. Common scalar types take a fast
// deterministic path; everything else falls back to maphash.Comparable,
// which is stable within one process (sufficient for partitioning).
func HashOf(key any) uint64 {
	switch k := key.(type) {
	case int:
		return mix64(uint64(k))
	case int32:
		return mix64(uint64(uint32(k)))
	case int64:
		return mix64(uint64(k))
	case uint64:
		return mix64(k)
	case string:
		return hashString(k)
	default:
		return maphash.Comparable(hashSeed, key)
	}
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed integer
// hash so that consecutive node ids do not all land in one partition.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a, inlined to avoid an allocation per key.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// LessOf compares two keys of the same ordered dynamic type. It supports
// the scalar key types the algorithms use; other types must supply a
// custom Ops.Less.
func LessOf(a, b any) bool {
	switch x := a.(type) {
	case int:
		return x < b.(int)
	case int32:
		return x < b.(int32)
	case int64:
		return x < b.(int64)
	case uint64:
		return x < b.(uint64)
	case float64:
		return x < b.(float64)
	case string:
		return x < b.(string)
	default:
		panic(fmt.Sprintf("kv: no default ordering for key type %T", a))
	}
}

// KeySizeOf estimates the serialized size of a key.
func KeySizeOf(key any) int {
	switch k := key.(type) {
	case string:
		return len(k) + 4
	default:
		return 8
	}
}

// OpsFor builds an Ops for ordered key type K and value type V. valSize
// estimates the serialized size of a value; pass nil to use DefaultSize.
// Values of other dynamic types (jobs routinely mix message and carrier
// values under one Ops) fall back to DefaultSize.
func OpsFor[K cmp.Ordered, V any](valSize func(V) int) Ops {
	vs := func(v any) int { return DefaultSize(v) }
	if valSize != nil {
		vs = func(v any) int {
			if tv, ok := v.(V); ok {
				return valSize(tv)
			}
			return DefaultSize(v)
		}
	}
	return Ops{
		Hash:    HashOf,
		Less:    func(a, b any) bool { return cmp.Less(a.(K), b.(K)) },
		Compare: func(a, b any) int { return cmp.Compare(a.(K), b.(K)) },
		KeySize: KeySizeOf,
		ValSize: vs,
		EncodePairs: AppendPairs,
		DecodePairs: func(data []byte) ([]Pair, error) {
			ps, _, err := DecodePairs(data)
			return ps, err
		},
		DecodePairsSlab: func(data []byte, s *Slab) ([]Pair, error) {
			ps, _, err := DecodePairsSlab(data, s)
			return ps, err
		},
		sortStable: func(ps []Pair) {
			slices.SortStableFunc(ps, func(a, b Pair) int { return cmp.Compare(a.Key.(K), b.Key.(K)) })
		},
		group: groupTyped[K],
	}
}

// keyAt pairs a concrete key with the index of its record, so grouping
// can sort 16-byte typed entries instead of 32-byte interface pairs.
type keyAt[K cmp.Ordered] struct {
	k K
	i int32
}

// groupTyped is the grouping fast path for Ops built by OpsFor. It
// leaves pairs in their original order and makes three allocations
// total (key index, values array, group headers) regardless of the
// number of distinct keys. The index tie-break keeps within-group value
// order identical to a stable sort.
func groupTyped[K cmp.Ordered](pairs []Pair) []Group {
	if len(pairs) == 0 {
		return nil
	}
	if len(pairs) >= fewKeysMinPairs {
		if gs, ok := groupFewKeys[K](pairs); ok {
			return gs
		}
	}
	ks := make([]keyAt[K], len(pairs))
	for i, p := range pairs {
		ks[i] = keyAt[K]{p.Key.(K), int32(i)}
	}
	// Sort by key alone so pdqsort's equal-element handling kicks in on
	// duplicate-heavy input, then restore arrival order within each
	// equal-key run; the two steps together are what a stable sort with
	// an index tie-break would produce, but much cheaper.
	slices.SortFunc(ks, func(a, b keyAt[K]) int { return cmp.Compare(a.k, b.k) })
	runStart := 0
	for i := 1; i <= len(ks); i++ {
		if i == len(ks) || ks[i].k != ks[runStart].k {
			if i-runStart > 1 {
				run := ks[runStart:i]
				slices.SortFunc(run, func(a, b keyAt[K]) int { return cmp.Compare(a.i, b.i) })
			}
			runStart = i
		}
	}
	vals := make([]any, len(ks))
	distinct := 1
	for i := range ks {
		vals[i] = pairs[ks[i].i].Value
		if i > 0 && ks[i].k != ks[i-1].k {
			distinct++
		}
	}
	groups := make([]Group, 0, distinct)
	start := 0
	for i := 1; i <= len(ks); i++ {
		if i == len(ks) || ks[i].k != ks[start].k {
			// Reuse the already-boxed key from the source pair instead of
			// re-boxing ks[start].k.
			groups = append(groups, Group{Key: pairs[ks[start].i].Key, Values: vals[start:i:i]})
			start = i
		}
	}
	return groups
}

// Few-keys grouping thresholds: the probe path wins when many pairs
// collapse onto few distinct keys (combiner chunks, per-node PageRank
// contributions), where the sort path's n·log n comparisons dwarf one
// hash probe per pair. Past the distinct cap the probe's map grows and
// the advantage inverts, so it bails to the sort.
const (
	fewKeysMinPairs    = 512
	fewKeysMaxDistinct = 128
)

// groupFewKeys groups by single-pass hash probe. ok=false means the
// input has more than fewKeysMaxDistinct distinct keys and the caller
// should take the sort path. Output is identical to the sort path:
// groups ordered by key, values in arrival order, Group.Key reusing the
// first-seen boxed key.
func groupFewKeys[K cmp.Ordered](pairs []Pair) ([]Group, bool) {
	type keyMeta struct {
		key   K
		first int32 // index of the first pair holding this key
		count int32
	}
	idx := make(map[K]int32, fewKeysMaxDistinct)
	metas := make([]keyMeta, 0, fewKeysMaxDistinct)
	groupOf := make([]int32, len(pairs))
	for i, p := range pairs {
		k := p.Key.(K)
		g, ok := idx[k]
		if !ok {
			if len(metas) == fewKeysMaxDistinct {
				return nil, false
			}
			g = int32(len(metas))
			idx[k] = g
			metas = append(metas, keyMeta{key: k, first: int32(i)})
		}
		metas[g].count++
		groupOf[i] = g
	}
	// Order the (few) groups by key, prefix-sum their value offsets, and
	// fill the shared values array positionally — no comparison touches
	// the n pairs again.
	order := make([]int32, len(metas))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int { return cmp.Compare(metas[a].key, metas[b].key) })
	rank := make([]int32, len(metas))   // group id → sorted position
	offs := make([]int32, len(metas)+1) // sorted position → values offset
	for pos, g := range order {
		rank[g] = int32(pos)
		offs[pos+1] = metas[g].count
	}
	for pos := range metas {
		offs[pos+1] += offs[pos]
	}
	fill := make([]int32, len(metas))
	copy(fill, offs[:len(metas)])
	vals := make([]any, len(pairs))
	for i, p := range pairs {
		pos := rank[groupOf[i]]
		vals[fill[pos]] = p.Value
		fill[pos]++
	}
	groups := make([]Group, len(metas))
	for pos, g := range order {
		groups[pos] = Group{Key: pairs[metas[g].first].Key, Values: vals[offs[pos]:offs[pos+1]:offs[pos+1]]}
	}
	return groups, true
}

// Sized lets value types report their own serialized size to the byte
// accounting.
type Sized interface {
	Bytes() int
}

// DefaultSize estimates the serialized size in bytes of common value
// shapes. Types implementing Sized take precedence.
func DefaultSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.Bytes()
	case bool:
		return 1
	case int, int64, uint64, float64:
		return 8
	case int32, float32, uint32:
		return 4
	case string:
		return len(x) + 4
	case []byte:
		return len(x) + 4
	case []int32:
		return 4*len(x) + 4
	case []int64:
		return 8*len(x) + 4
	case []float32:
		return 4*len(x) + 4
	case []float64:
		return 8*len(x) + 4
	case []Pair:
		n := 4
		for _, p := range x {
			n += KeySizeOf(p.Key) + DefaultSize(p.Value)
		}
		return n
	default:
		return 16 // opaque value: charge a conservative constant
	}
}

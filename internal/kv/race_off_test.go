//go:build !race

package kv

const raceDetectorEnabled = false

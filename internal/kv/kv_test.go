package kv

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intOps() Ops { return OpsFor[int64, float64](nil) }

func TestPartitionInRange(t *testing.T) {
	ops := intOps()
	f := func(key int64, n uint8) bool {
		parts := int(n%31) + 1
		p := ops.Partition(key, parts)
		return p >= 0 && p < parts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	ops := intOps()
	f := func(key int64) bool {
		return ops.Partition(key, 7) == ops.Partition(key, 7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	// Consecutive integer keys (node ids) must not pile into few
	// partitions; that is the whole point of mix64.
	ops := intOps()
	const n, parts = 100000, 16
	counts := make([]int, parts)
	for i := int64(0); i < n; i++ {
		counts[ops.Partition(i, parts)]++
	}
	want := n / parts
	for p, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("partition %d has %d keys, want within 20%% of %d", p, c, want)
		}
	}
}

func TestHashOfAllKeyTypes(t *testing.T) {
	keys := []any{int(1), int32(2), int64(3), uint64(4), "five", struct{ X int }{6}}
	seen := map[uint64]any{}
	for _, k := range keys {
		h := HashOf(k)
		if h != HashOf(k) {
			t.Fatalf("hash of %T not stable", k)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("suspicious collision between %v and %v", prev, k)
		}
		seen[h] = k
	}
}

func TestKeySizeOf(t *testing.T) {
	if KeySizeOf("abcd") != 8 {
		t.Fatalf("string key size: %d", KeySizeOf("abcd"))
	}
	if KeySizeOf(int64(9)) != 8 || KeySizeOf(struct{}{}) != 8 {
		t.Fatal("non-string keys charge 8 bytes")
	}
}

func TestRegisterWireType(t *testing.T) {
	type custom struct{ A int }
	RegisterWireType(custom{}) // must not panic, idempotent for new types
}

func TestHashOfStringStable(t *testing.T) {
	if HashOf("abc") != HashOf("abc") {
		t.Fatal("string hash not stable")
	}
	if HashOf("abc") == HashOf("abd") {
		t.Fatal("suspicious collision on near strings")
	}
}

func TestLessOfTypes(t *testing.T) {
	cases := []struct {
		a, b any
		want bool
	}{
		{1, 2, true}, {2, 1, false},
		{int32(3), int32(4), true},
		{int64(-1), int64(0), true},
		{uint64(1), uint64(2), true},
		{1.5, 2.5, true},
		{"a", "b", true}, {"b", "a", false},
	}
	for _, c := range cases {
		if got := LessOf(c.a, c.b); got != c.want {
			t.Errorf("LessOf(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLessOfPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unordered key type")
		}
	}()
	LessOf(struct{ X int }{1}, struct{ X int }{2})
}

func TestGroupPairs(t *testing.T) {
	ops := intOps()
	pairs := []Pair{
		{int64(2), 1.0}, {int64(1), 2.0}, {int64(2), 3.0}, {int64(1), 4.0}, {int64(3), 5.0},
	}
	groups := GroupPairs(pairs, ops)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	if groups[0].Key != int64(1) || groups[1].Key != int64(2) || groups[2].Key != int64(3) {
		t.Fatalf("groups not sorted by key: %v", groups)
	}
	if groups[0].Values[0] != 2.0 || groups[0].Values[1] != 4.0 {
		t.Fatalf("values lost arrival order: %v", groups[0].Values)
	}
}

func TestGroupPairsProperty(t *testing.T) {
	ops := intOps()
	f := func(keys []int64) bool {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{k % 16, float64(i)}
		}
		groups := GroupPairs(pairs, ops)
		// Total values preserved and keys strictly increasing.
		total := 0
		for i, g := range groups {
			total += len(g.Values)
			if i > 0 && !ops.Less(groups[i-1].Key, g.Key) {
				return false
			}
		}
		return total == len(pairs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSortedPairs(t *testing.T) {
	ops := intOps()
	f := func(as, bs []int64) bool {
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		a := make([]Pair, len(as))
		for i, k := range as {
			a[i] = Pair{k, 0.0}
		}
		b := make([]Pair, len(bs))
		for i, k := range bs {
			b[i] = Pair{k, 0.0}
		}
		m := MergeSortedPairs(a, b, ops)
		if len(m) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if ops.Less(m[i].Key, m[i-1].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsStable(t *testing.T) {
	ops := intOps()
	pairs := []Pair{{int64(1), "b"}, {int64(0), "x"}, {int64(1), "a"}}
	ops.SortPairs(pairs)
	if pairs[0].Key != int64(0) || pairs[1].Value != "b" || pairs[2].Value != "a" {
		t.Fatalf("stable sort violated: %v", pairs)
	}
}

func TestDefaultSize(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{true, 1},
		{int(1), 8}, {int64(1), 8}, {uint64(1), 8}, {1.0, 8},
		{int32(1), 4}, {float32(1), 4}, {uint32(1), 4},
		{"abcd", 8},
		{[]byte{1, 2}, 6},
		{[]int32{1, 2, 3}, 16},
		{[]int64{1, 2, 3}, 28},
		{[]float32{1, 2}, 12},
		{[]float64{1, 2}, 20},
		{uint32(1), 4},
		{[]Pair{{Key: int64(1), Value: 2.0}}, 4 + 8 + 8},
		{struct{}{}, 16},
	}
	for _, c := range cases {
		if got := DefaultSize(c.v); got != c.want {
			t.Errorf("DefaultSize(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
}

type sized struct{ n int }

func (s sized) Bytes() int { return s.n }

func TestDefaultSizeSized(t *testing.T) {
	if got := DefaultSize(sized{42}); got != 42 {
		t.Fatalf("Sized override ignored: got %d", got)
	}
}

func TestPairSizeAndOpsFor(t *testing.T) {
	ops := OpsFor[string, []float64](nil)
	p := Pair{"node", []float64{1, 2, 3}}
	want := (4 + 4) + (8*3 + 4)
	if got := ops.PairSize(p); got != want {
		t.Fatalf("PairSize = %d, want %d", got, want)
	}
	custom := OpsFor[int64, int](func(int) int { return 100 })
	if got := custom.ValSize(7); got != 100 {
		t.Fatalf("custom valSize ignored: %d", got)
	}
}

func TestPartitionPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	intOps().Partition(int64(1), 0)
}

func BenchmarkHashOfInt64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	keys := make([]int64, 1024)
	for i := range keys {
		keys[i] = r.Int63()
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += HashOf(keys[i%len(keys)])
	}
	_ = sink
}


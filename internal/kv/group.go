package kv

import "sort"

// GroupPairs groups pairs by key and returns the groups sorted by key
// under ops.Less. Within a group, values keep the order in which their
// pairs appeared, so grouping is deterministic for a deterministic input
// order.
func GroupPairs(pairs []Pair, ops Ops) []Group {
	byKey := make(map[any][]any, len(pairs))
	for _, p := range pairs {
		byKey[p.Key] = append(byKey[p.Key], p.Value)
	}
	groups := make([]Group, 0, len(byKey))
	for k, vs := range byKey {
		groups = append(groups, Group{Key: k, Values: vs})
	}
	sort.Slice(groups, func(i, j int) bool { return ops.Less(groups[i].Key, groups[j].Key) })
	return groups
}

// MergeSortedPairs merges two key-sorted pair slices into one key-sorted
// slice. Used by the shuffle merge and by checkpoint compaction.
func MergeSortedPairs(a, b []Pair, ops Ops) []Pair {
	out := make([]Pair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if ops.Less(b[j].Key, a[i].Key) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

package kv

import "sort"

// GroupPairs groups pairs by key and returns the groups sorted by key.
// Within a group, values keep the order in which their pairs appeared,
// so grouping is deterministic for a deterministic input order.
//
// Ops built by OpsFor take a typed sort-based path that leaves pairs
// untouched and allocates three slices total instead of one per key.
// Hand-rolled Ops with only Compare stably sort the pairs slice IN
// PLACE and cut groups from a single values array; callers that need
// the original order must copy first. Ops with neither fall back to the
// legacy map-based path, which also leaves pairs untouched.
func GroupPairs(pairs []Pair, ops Ops) []Group {
	if ops.group != nil {
		return ops.group(pairs)
	}
	if ops.Compare == nil && ops.sortStable == nil {
		return groupPairsMap(pairs, ops)
	}
	if len(pairs) == 0 {
		return nil
	}
	ops.SortPairs(pairs)
	eq := func(a, b any) bool { return ops.Compare(a, b) == 0 }
	if ops.Compare == nil {
		eq = func(a, b any) bool { return !ops.Less(a, b) && !ops.Less(b, a) }
	}
	distinct := 1
	for i := 1; i < len(pairs); i++ {
		if !eq(pairs[i].Key, pairs[i-1].Key) {
			distinct++
		}
	}
	vals := make([]any, len(pairs))
	for i, p := range pairs {
		vals[i] = p.Value
	}
	groups := make([]Group, 0, distinct)
	start := 0
	for i := 1; i <= len(pairs); i++ {
		if i == len(pairs) || !eq(pairs[i].Key, pairs[start].Key) {
			groups = append(groups, Group{Key: pairs[start].Key, Values: vals[start:i:i]})
			start = i
		}
	}
	return groups
}

// groupPairsMap is the legacy grouping used when no comparator is
// available: hash by key, then sort the group headers.
func groupPairsMap(pairs []Pair, ops Ops) []Group {
	byKey := make(map[any][]any, len(pairs))
	for _, p := range pairs {
		byKey[p.Key] = append(byKey[p.Key], p.Value)
	}
	groups := make([]Group, 0, len(byKey))
	for k, vs := range byKey {
		groups = append(groups, Group{Key: k, Values: vs})
	}
	sort.Slice(groups, func(i, j int) bool { return ops.Less(groups[i].Key, groups[j].Key) })
	return groups
}

// MergeSortedPairs merges two key-sorted pair slices into one key-sorted
// slice. Used by the shuffle merge and by checkpoint compaction.
func MergeSortedPairs(a, b []Pair, ops Ops) []Pair {
	out := make([]Pair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if ops.Less(b[j].Key, a[i].Key) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

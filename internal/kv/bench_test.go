package kv

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchPairs builds n pairs with keys drawn from a key space of width
// keys (duplicates group together) in shuffled order.
func benchPairs(n, keys int) []Pair {
	rng := rand.New(rand.NewSource(int64(n)))
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{Key: int64(rng.Intn(keys)), Value: float64(i)}
	}
	return out
}

func BenchmarkSortPairs(b *testing.B) {
	ops := OpsFor[int64, float64](nil)
	for _, n := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := benchPairs(n, n)
			buf := make([]Pair, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				ops.SortPairs(buf)
			}
		})
	}
}

func BenchmarkEncodePairs(b *testing.B) {
	ops := OpsFor[int64, float64](nil)
	src := benchPairs(1<<12, 1<<12)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		buf, ok = ops.EncodePairs(buf[:0], src)
		if !ok {
			b.Fatal("encode refused")
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecodePairs(b *testing.B) {
	ops := OpsFor[int64, float64](nil)
	buf, _ := ops.EncodePairs(nil, benchPairs(1<<12, 1<<12))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.DecodePairs(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupPairs(b *testing.B) {
	ops := OpsFor[int64, float64](nil)
	for _, shape := range []struct {
		n, keys int
	}{
		{1 << 12, 1 << 12}, // mostly unique keys (graph state)
		{1 << 12, 1 << 6},  // heavy duplication (combiner input)
	} {
		b.Run(fmt.Sprintf("n=%d/keys=%d", shape.n, shape.keys), func(b *testing.B) {
			src := benchPairs(shape.n, shape.keys)
			buf := make([]Pair, shape.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if g := GroupPairs(buf, ops); len(g) == 0 {
					b.Fatal("empty grouping")
				}
			}
		})
	}
}

package kv

import (
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, ps []Pair) []Pair {
	t.Helper()
	buf, ok := AppendPairs(nil, ps)
	if !ok {
		t.Fatalf("AppendPairs refused %v", ps)
	}
	got, n, err := DecodePairs(buf)
	if err != nil {
		t.Fatalf("DecodePairs: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("DecodePairs consumed %d of %d bytes", n, len(buf))
	}
	return got
}

func TestPairsRoundTripBuiltins(t *testing.T) {
	ps := []Pair{
		{int64(1), nil},
		{int64(-7), true},
		{"key", false},
		{int32(-3), int(42)},
		{uint64(9), int64(-1 << 40)},
		{int64(2), uint64(1<<63 + 5)},
		{int64(3), float32(1.5)},
		{int64(4), 3.14159},
		{int64(5), "hello world"},
		{int64(6), []byte{0, 1, 255}},
		{int64(7), []int32{-1, 0, 1 << 30}},
		{int64(8), []int64{-1 << 50, 7}},
		{int64(9), []float32{1, -2.5}},
		{int64(10), []float64{0.1, 0.2, 0.3}},
		{int64(11), []Pair{{int64(1), 2.0}, {"nested", []float64{9}}}},
	}
	got := roundTrip(t, ps)
	if !reflect.DeepEqual(ps, got) {
		t.Fatalf("round trip mismatch:\n in  %#v\n out %#v", ps, got)
	}
}

func TestPairsRoundTripEmpty(t *testing.T) {
	if got := roundTrip(t, []Pair{}); len(got) != 0 {
		t.Fatalf("empty list decoded to %v", got)
	}
}

func TestAppendPairsUnregisteredFallsBack(t *testing.T) {
	type stranger struct{ X int }
	base := []byte("prefix")
	buf, ok := AppendPairs(base, []Pair{{int64(1), 2.0}, {int64(2), stranger{3}}})
	if ok {
		t.Fatal("expected ok=false for unregistered value type")
	}
	if len(buf) != len(base) {
		t.Fatalf("buffer not truncated on failure: len %d, want %d", len(buf), len(base))
	}
}

func TestDecodePairsRejectsCorruption(t *testing.T) {
	buf, _ := AppendPairs(nil, []Pair{{int64(1), "abcdef"}})
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodePairs(buf[:cut]); err == nil {
			// Truncation inside a varint can still parse shorter, but
			// cutting the final string payload must error.
			if cut > len(buf)-3 {
				t.Fatalf("truncation at %d/%d not detected", cut, len(buf))
			}
		}
	}
	if _, _, err := DecodePairs([]byte{0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("absurd pair count accepted")
	}
}

func TestRegisterValueCodecRoundTrip(t *testing.T) {
	type testRec struct {
		A int64
		B []float64
	}
	RegisterValueCodec(testRec{}, ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			r := v.(testRec)
			buf = AppendVarint(buf, r.A)
			buf = AppendUvarint(buf, uint64(len(r.B)))
			for _, f := range r.B {
				buf = AppendFloat64(buf, f)
			}
			return buf, true
		},
		Decode: func(data []byte) (any, int, error) {
			a, n, err := Varint(data)
			if err != nil {
				return nil, 0, err
			}
			l, m, err := Uvarint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m
			var b []float64
			if l > 0 {
				b = make([]float64, l)
			}
			for i := range b {
				f, m, err := Float64At(data[n:])
				if err != nil {
					return nil, 0, err
				}
				b[i], n = f, n+m
			}
			return testRec{A: a, B: b}, n, nil
		},
	})
	ps := []Pair{{int64(1), testRec{A: -9, B: []float64{1, 2}}}, {int64(2), testRec{}}}
	got := roundTrip(t, ps)
	if !reflect.DeepEqual(ps, got) {
		t.Fatalf("custom codec round trip mismatch: %#v vs %#v", ps, got)
	}
}

func TestOpsForEncodeDecode(t *testing.T) {
	ops := OpsFor[int64, float64](nil)
	ps := []Pair{{int64(3), 1.5}, {int64(1), -2.0}}
	buf, ok := ops.EncodePairs(nil, ps)
	if !ok {
		t.Fatal("OpsFor EncodePairs refused builtin types")
	}
	got, err := ops.DecodePairs(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, got) {
		t.Fatalf("ops round trip mismatch: %v vs %v", got, ps)
	}
}

func TestGroupPairsMapFallback(t *testing.T) {
	// Hand-rolled Ops without Compare must still group correctly and
	// leave the input order untouched.
	ops := Ops{Hash: HashOf, Less: LessOf, KeySize: KeySizeOf, ValSize: DefaultSize}
	pairs := []Pair{{int64(2), 1.0}, {int64(1), 2.0}, {int64(2), 3.0}}
	orig := make([]Pair, len(pairs))
	copy(orig, pairs)
	groups := GroupPairs(pairs, ops)
	if len(groups) != 2 || groups[0].Key != int64(1) || len(groups[1].Values) != 2 {
		t.Fatalf("fallback grouping wrong: %v", groups)
	}
	if !reflect.DeepEqual(orig, pairs) {
		t.Fatalf("map fallback mutated input: %v", pairs)
	}
}

//go:build procsmoke

// Package proctest drives the real imrmaster/imrworker binaries as
// separate OS processes: a 1-master/3-worker cluster over loopback TCP,
// a kill -9 schedule keyed off the master's ITER progress lines, and a
// byte-for-byte diff of the canonical output against the in-process
// engine. This is the layer below internal/core's remote tests — same
// protocol, but with process isolation, signals, and exec for real.
//
// Guarded by the procsmoke build tag (invoked via `make proc-smoke`):
// it builds binaries and forks processes, which the ordinary unit-test
// sweep should not do.
package proctest

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/jobs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

const workers = 3

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds imrmaster and imrworker once per test run and returns
// the directory holding them.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "imrproc-bin")
		if buildErr != nil {
			return
		}
		root, err := filepath.Abs("../..")
		if err != nil {
			buildErr = err
			return
		}
		for _, b := range []string{"imrmaster", "imrworker"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, b), "./cmd/"+b)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", b, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// proc wraps one child process with line-oriented stdout scanning so
// tests can key actions ("kill -9 now") off its progress output.
type proc struct {
	name  string
	cmd   *exec.Cmd
	lines chan string
	done  chan struct{}

	mu  sync.Mutex
	log bytes.Buffer
}

func start(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{name: name, cmd: exec.Command(bin, args...), lines: make(chan string, 4096), done: make(chan struct{})}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = &lockedWriter{p: p}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintf(&p.log, "%s\n", line)
			p.mu.Unlock()
			select {
			case p.lines <- line:
			default: // scanner must never block on a full channel
			}
		}
		p.cmd.Wait()
		close(p.done)
	}()
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		<-p.done
	})
	return p
}

type lockedWriter struct{ p *proc }

func (w *lockedWriter) Write(b []byte) (int, error) {
	w.p.mu.Lock()
	defer w.p.mu.Unlock()
	return w.p.log.Write(b)
}

func (p *proc) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log.String()
}

// expect consumes stdout lines until one matches re, or fails the test.
func (p *proc) expect(t *testing.T, re *regexp.Regexp, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line := <-p.lines:
			if re.MatchString(line) {
				return line
			}
		case <-p.done:
			t.Fatalf("%s exited before printing %v; output:\n%s", p.name, re, p.dump())
		case <-deadline:
			t.Fatalf("%s: no line matching %v within %v; output:\n%s", p.name, re, timeout, p.dump())
		}
	}
}

// kill9 is the real thing: SIGKILL, no goodbye frame, sockets reset by
// the kernel.
func (p *proc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.done
}

// stop sends SIGTERM and requires a clean (exit 0) shutdown — the
// graceful-deregistration path.
func (p *proc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.done:
	case <-time.After(15 * time.Second):
		t.Fatalf("%s did not exit on SIGTERM; output:\n%s", p.name, p.dump())
	}
	if !p.cmd.ProcessState.Success() {
		t.Fatalf("%s exited %v on SIGTERM; output:\n%s", p.name, p.cmd.ProcessState, p.dump())
	}
}

func (p *proc) waitExit(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-p.done:
	case <-time.After(timeout):
		t.Fatalf("%s still running after %v; output:\n%s", p.name, timeout, p.dump())
	}
	if !p.cmd.ProcessState.Success() {
		t.Fatalf("%s exited %v; output:\n%s", p.name, p.cmd.ProcessState, p.dump())
	}
}

// freePort reserves a concrete loopback port for a master that must be
// relaunchable at the same address.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// masterArgs assembles the common imrmaster invocation.
func masterArgs(listen, data, jobKey, out string, params map[string]string, resume bool) []string {
	args := []string{
		"-listen", listen, "-data", data, "-workers", strconv.Itoa(workers),
		"-job", jobKey, "-out", out,
		"-heartbeat", "250ms", "-heartbeat-misses", "4",
	}
	for _, k := range sortedKeys(params) {
		args = append(args, "-param", k+"="+params[k])
	}
	if resume {
		args = append(args, "-resume")
	}
	return args
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func startWorkers(t *testing.T, bin, masterHP string) []*proc {
	t.Helper()
	ws := make([]*proc, workers)
	for i := range ws {
		id := fmt.Sprintf("worker-%d", i)
		ws[i] = start(t, id, filepath.Join(bin, "imrworker"),
			"-master", masterHP, "-id", id, "-ping", "250ms", "-ping-misses", "6")
	}
	return ws
}

// reference runs the registry job on the classic in-process engine and
// returns the canonical sorted "key\tvalue" lines — the bytes the
// multi-process cluster must reproduce exactly.
func reference(t *testing.T, key string, params map[string]string) []string {
	t.Helper()
	m := metrics.NewSet()
	spec := cluster.Uniform(workers)
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), m)
	if err := jobs.Seed(fs, spec.IDs()[0], key, params); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.Build(key, params)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var recs []kv.Pair
	for _, f := range fs.List(res.OutputPath + "/") {
		pairs, err := fs.ReadFile(f, spec.IDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, pairs...)
	}
	if len(recs) == 0 {
		t.Fatal("reference run produced no output")
	}
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = fmt.Sprintf("%v\t%v", r.Key, r.Value)
	}
	sort.Strings(lines)
	return lines
}

func readOutput(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n")) {
		lines = append(lines, string(l))
	}
	return lines
}

func diffLines(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d output lines, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: line %d differs:\n got %q\nwant %q", what, i, got[i], want[i])
		}
	}
}

var (
	iterRe = func(n int) *regexp.Regexp { return regexp.MustCompile(fmt.Sprintf(`^ITER %d `, n)) }
	doneRe = regexp.MustCompile(`^DONE iters=(\d+) converged=\S+ recoveries=(\d+)`)
)

// TestProcPageRankWorkerKill is the §3.4.1 scenario on real processes:
// PageRank across 3 worker binaries, worker-1 killed with SIGKILL while
// iteration 3 is in flight, the master detecting the silence, respawning
// the pairs and rolling back — and the final output still matching the
// in-process engine byte for byte.
func TestProcPageRankWorkerKill(t *testing.T) {
	bin := binaries(t)
	params := map[string]string{"name": "pr-proc", "nodes": "300", "maxiter": "10", "ckpt": "2", "tasks": "4"}
	want := reference(t, "pagerank", params)

	out := filepath.Join(t.TempDir(), "out.txt")
	master := start(t, "master", filepath.Join(bin, "imrmaster"),
		masterArgs(freePort(t), t.TempDir(), "pagerank", out, params, false)...)
	line := master.expect(t, regexp.MustCompile(`^MASTER control=`), 30*time.Second)
	hp := regexp.MustCompile(`control=(\S+)`).FindStringSubmatch(line)[1]
	ws := startWorkers(t, bin, hp)

	master.expect(t, iterRe(2), 60*time.Second)
	ws[1].kill9(t)

	done := master.expect(t, doneRe, 120*time.Second)
	if rec, _ := strconv.Atoi(doneRe.FindStringSubmatch(done)[2]); rec < 1 {
		t.Fatalf("master finished without recovering from the kill: %q", done)
	}
	master.waitExit(t, 30*time.Second)
	diffLines(t, readOutput(t, out), want, "pagerank after worker kill -9")
}

// TestProcMasterKillResume kills the master binary with SIGKILL
// mid-run, then relaunches it with -resume on the same address and data
// directory: the durable manifests define the restart point, the
// surviving workers are re-admitted from their rejoin knocking, and the
// finished output matches the in-process engine byte for byte.
func TestProcMasterKillResume(t *testing.T) {
	bin := binaries(t)
	params := map[string]string{"name": "pr-resume", "nodes": "300", "maxiter": "10", "ckpt": "1", "tasks": "4"}
	want := reference(t, "pagerank", params)

	data := t.TempDir()
	out := filepath.Join(t.TempDir(), "out.txt")
	addr := freePort(t)
	m1 := start(t, "master-1", filepath.Join(bin, "imrmaster"),
		masterArgs(addr, data, "pagerank", out, params, false)...)
	m1.expect(t, regexp.MustCompile(`^MASTER control=`), 30*time.Second)
	ws := startWorkers(t, bin, addr)

	// ckpt=1 means every committed iteration wrote a manifest; by the
	// time ITER 5 prints, several durable restart points exist.
	m1.expect(t, iterRe(5), 90*time.Second)
	m1.kill9(t)

	m2 := start(t, "master-2", filepath.Join(bin, "imrmaster"),
		masterArgs(addr, data, "pagerank", out, params, true)...)
	m2.expect(t, regexp.MustCompile(`^WORKERS `), 60*time.Second)
	m2.expect(t, doneRe, 120*time.Second)
	m2.waitExit(t, 30*time.Second)
	diffLines(t, readOutput(t, out), want, "pagerank after master kill -9 + -resume")

	// The survivors deregister cleanly: SIGTERM must exit 0.
	for _, w := range ws {
		w.stop(t)
	}
}

// TestProcSSSP is the second-algorithm contract: the fault-free
// multi-process SSSP run reproduces the in-process output exactly.
func TestProcSSSP(t *testing.T) {
	bin := binaries(t)
	params := map[string]string{"name": "sssp-proc", "nodes": "300", "maxiter": "12", "ckpt": "3", "tasks": "4"}
	want := reference(t, "sssp", params)

	out := filepath.Join(t.TempDir(), "out.txt")
	master := start(t, "master", filepath.Join(bin, "imrmaster"),
		masterArgs(freePort(t), t.TempDir(), "sssp", out, params, false)...)
	line := master.expect(t, regexp.MustCompile(`^MASTER control=`), 30*time.Second)
	hp := regexp.MustCompile(`control=(\S+)`).FindStringSubmatch(line)[1]
	ws := startWorkers(t, bin, hp)

	master.expect(t, doneRe, 120*time.Second)
	master.waitExit(t, 30*time.Second)
	diffLines(t, readOutput(t, out), want, "sssp multi-process")
	for _, w := range ws {
		w.stop(t)
	}
}

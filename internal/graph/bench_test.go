package graph

import (
	"bytes"
	"testing"
)

func BenchmarkGenerate(b *testing.B) {
	cfg := GenConfig{Nodes: 50000, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := Generate(cfg)
		b.ReportMetric(float64(g.Edges()), "edges")
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	g := Generate(GenConfig{Nodes: 10000, Degree: PageRankDegree, Seed: 2})
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := Generate(GenConfig{Nodes: 100000, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 3})
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for u := int32(0); u < int32(g.N); u++ {
			_, w := g.Neighbors(u)
			for _, x := range w {
				sink += float64(x)
			}
		}
	}
	_ = sink
}

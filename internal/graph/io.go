package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text interchange format, one line per node:
//
//	weighted:   "<u>\t<v1>:<w1> <v2>:<w2> ..."
//	unweighted: "<u>\t<v1> <v2> ..."
//
// Nodes without outgoing edges still get a line so node counts survive a
// round trip. This is the "particular formatted graph" input the paper's
// prototype loads and partitions automatically.

// Save writes g in text format.
func Save(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.N; u++ {
		if _, err := fmt.Fprintf(bw, "%d\t", u); err != nil {
			return err
		}
		dst, ws := g.Neighbors(int32(u))
		for i, v := range dst {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if g.Weighted() {
				if _, err := fmt.Fprintf(bw, "%d:%g", v, ws[i]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses the text format. The graph is weighted if any edge has a
// ":weight" suffix; node count is one plus the largest id seen.
func Load(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	type edge struct {
		u, v int32
		w    float32
	}
	var edges []edge
	maxID := int32(-1)
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		head, rest, _ := strings.Cut(line, "\t")
		u64, err := strconv.ParseInt(strings.TrimSpace(head), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, head)
		}
		u := int32(u64)
		if u > maxID {
			maxID = u
		}
		for _, tok := range strings.Fields(rest) {
			vs, ws, hasW := strings.Cut(tok, ":")
			v64, err := strconv.ParseInt(vs, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge target %q", lineNo, tok)
			}
			v := int32(v64)
			if v > maxID {
				maxID = v
			}
			var w float64
			if hasW {
				weighted = true
				w, err = strconv.ParseFloat(ws, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, tok)
				}
			}
			edges = append(edges, edge{u, v, float32(w)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, fmt.Errorf("graph: empty input")
	}
	b := NewBuilder(int(maxID)+1, weighted)
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	return b.Build(), nil
}

// Package graph provides the graph substrate the evaluated algorithms
// run on: compact CSR adjacency storage, the text interchange format the
// tools read and write, log-normal synthetic generators with the
// parameters the paper extracts from its real graphs, and conversion to
// the kv records the engines consume.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph in CSR (compressed sparse row) form. Nodes
// are 0..N-1. W is nil for unweighted graphs, otherwise parallel to Dst.
type Graph struct {
	N   int
	Off []int64
	Dst []int32
	W   []float32
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.W != nil }

// Edges returns the edge count.
func (g *Graph) Edges() int64 { return int64(len(g.Dst)) }

// OutDegree returns node u's out-degree.
func (g *Graph) OutDegree(u int32) int {
	return int(g.Off[u+1] - g.Off[u])
}

// Neighbors returns node u's outgoing edge targets and weights (weights
// nil for unweighted graphs). The slices alias the graph's storage and
// must not be mutated.
func (g *Graph) Neighbors(u int32) ([]int32, []float32) {
	lo, hi := g.Off[u], g.Off[u+1]
	if g.W == nil {
		return g.Dst[lo:hi], nil
	}
	return g.Dst[lo:hi], g.W[lo:hi]
}

// Builder accumulates edges and produces a CSR graph.
type Builder struct {
	n        int
	weighted bool
	src      []int32
	dst      []int32
	w        []float32
}

// NewBuilder creates a builder for n nodes.
func NewBuilder(n int, weighted bool) *Builder {
	return &Builder{n: n, weighted: weighted}
}

// AddEdge adds a directed edge u→v. The weight is ignored for
// unweighted builders.
func (b *Builder) AddEdge(u, v int32, w float32) {
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d nodes", u, v, b.n))
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	if b.weighted {
		b.w = append(b.w, w)
	}
}

// Build produces the CSR graph. Edges are ordered by source, preserving
// insertion order within a source.
func (b *Builder) Build() *Graph {
	g := &Graph{N: b.n, Off: make([]int64, b.n+1)}
	for _, u := range b.src {
		g.Off[u+1]++
	}
	for i := 0; i < b.n; i++ {
		g.Off[i+1] += g.Off[i]
	}
	g.Dst = make([]int32, len(b.dst))
	if b.weighted {
		g.W = make([]float32, len(b.dst))
	}
	pos := make([]int64, b.n)
	copy(pos, g.Off[:b.n])
	for i, u := range b.src {
		p := pos[u]
		pos[u]++
		g.Dst[p] = b.dst[i]
		if b.weighted {
			g.W[p] = b.w[i]
		}
	}
	return g
}

// Stats summarizes a graph the way the paper's dataset tables do.
type Stats struct {
	Nodes    int
	Edges    int64
	EstBytes int64 // estimated text-format file size
}

// StatsOf computes dataset statistics. The byte estimate prices each
// node line at 8 bytes plus ~8 bytes per weighted edge (id + weight
// digits) or ~7 per unweighted edge, approximating the paper's file
// sizes.
func (g *Graph) StatsOf() Stats {
	per := int64(7)
	if g.Weighted() {
		per = 13
	}
	return Stats{
		Nodes:    g.N,
		Edges:    g.Edges(),
		EstBytes: int64(g.N)*8 + g.Edges()*per,
	}
}

// InDegrees computes the in-degree of every node (used by tests and the
// sequential PageRank reference).
func (g *Graph) InDegrees() []int {
	in := make([]int, g.N)
	for _, v := range g.Dst {
		in[v]++
	}
	return in
}

// SortAdjacency orders each node's adjacency list by target id, making
// graphs generated from unordered edge sets canonical. Weights follow
// their edges.
func (g *Graph) SortAdjacency() {
	for u := 0; u < g.N; u++ {
		lo, hi := g.Off[u], g.Off[u+1]
		if hi-lo < 2 {
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = int(lo) + i
		}
		sort.Slice(idx, func(a, b int) bool { return g.Dst[idx[a]] < g.Dst[idx[b]] })
		dst := make([]int32, len(idx))
		var w []float32
		if g.W != nil {
			w = make([]float32, len(idx))
		}
		for i, j := range idx {
			dst[i] = g.Dst[j]
			if w != nil {
				w[i] = g.W[j]
			}
		}
		copy(g.Dst[lo:hi], dst)
		if w != nil {
			copy(g.W[lo:hi], w)
		}
	}
}

package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// LogNormalParams are the shape (sigma) and scale (mu) of a log-normal
// distribution, the model the paper fits to its real graphs' degree and
// weight distributions (citing Clauset et al.).
type LogNormalParams struct {
	Sigma float64
	Mu    float64
}

// Sample draws one value.
func (p LogNormalParams) Sample(rng *rand.Rand) float64 {
	return math.Exp(rng.NormFloat64()*p.Sigma + p.Mu)
}

// Mean returns the distribution mean exp(mu + sigma^2/2).
func (p LogNormalParams) Mean() float64 {
	return math.Exp(p.Mu + p.Sigma*p.Sigma/2)
}

// WithMean returns a copy with mu adjusted so the mean equals m,
// keeping sigma. Used to fit a real graph's average degree while keeping
// the paper's shape parameter.
func (p LogNormalParams) WithMean(m float64) LogNormalParams {
	return LogNormalParams{Sigma: p.Sigma, Mu: math.Log(m) - p.Sigma*p.Sigma/2}
}

// The paper's fitted parameters (§4.1.2).
var (
	// SSSPDegree: node out-degree of the SSSP graphs (sigma=1.0, mu=1.5).
	SSSPDegree = LogNormalParams{Sigma: 1.0, Mu: 1.5}
	// SSSPWeight: link weights of the SSSP graphs (sigma=1.2, mu=0.4).
	SSSPWeight = LogNormalParams{Sigma: 1.2, Mu: 0.4}
	// PageRankDegree: out-degree of the PageRank graphs (sigma=2, mu=-0.5).
	PageRankDegree = LogNormalParams{Sigma: 2.0, Mu: -0.5}
)

// GenConfig drives the synthetic generator.
type GenConfig struct {
	Nodes    int
	Degree   LogNormalParams
	Weighted bool
	Weight   LogNormalParams // used when Weighted
	Seed     int64
	// MaxDegree caps a single node's out-degree (heavy log-normal tails
	// can otherwise produce a node linking to most of the graph).
	// 0 means Nodes-1.
	MaxDegree int
}

// Generate builds a synthetic directed graph: each node's out-degree is
// a log-normal draw, targets are uniform over other nodes (no self
// loops; duplicate targets are collapsed), weights are log-normal.
func Generate(cfg GenConfig) *Graph {
	if cfg.Nodes <= 0 {
		panic("graph: Generate with no nodes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 || maxDeg > cfg.Nodes-1 {
		maxDeg = cfg.Nodes - 1
	}
	b := NewBuilder(cfg.Nodes, cfg.Weighted)
	seen := make(map[int32]bool, 64)
	for u := 0; u < cfg.Nodes; u++ {
		deg := int(math.Round(cfg.Degree.Sample(rng)))
		if deg > maxDeg {
			deg = maxDeg
		}
		clear(seen)
		for d := 0; d < deg; d++ {
			v := int32(rng.Intn(cfg.Nodes))
			if int(v) == u || seen[v] {
				continue // collapse duplicates rather than retry: keeps generation O(E)
			}
			seen[v] = true
			w := float32(0)
			if cfg.Weighted {
				w = float32(cfg.Weight.Sample(rng))
			}
			b.AddEdge(int32(u), v, w)
		}
	}
	g := b.Build()
	g.SortAdjacency()
	return g
}

// Dataset names a reproducible synthetic dataset mirroring one row of
// the paper's Table 1 (SSSP, weighted) or Table 2 (PageRank,
// unweighted), scaled down from the paper's node counts.
type Dataset struct {
	Name       string
	Table      int // 1 = SSSP datasets, 2 = PageRank datasets
	PaperNodes int // node count in the paper
	PaperEdges int64
	Nodes      int // node count at this scale
	Cfg        GenConfig
}

// DefaultScale divides the paper's node counts for laptop-size runs.
const DefaultScale = 100

// Catalog returns the paper's eight graph datasets at 1/scale of their
// published node counts. The degree distributions use the paper's
// fitted shape parameters; for the "real" graphs the scale parameter is
// refit so the average degree matches the published edge/node ratio.
func Catalog(scale int) []Dataset {
	if scale <= 0 {
		scale = 1
	}
	mk := func(name string, table, paperNodes int, paperEdges int64, deg LogNormalParams, weighted bool, seed int64) Dataset {
		n := paperNodes / scale
		if n < 64 {
			n = 64
		}
		return Dataset{
			Name:       name,
			Table:      table,
			PaperNodes: paperNodes,
			PaperEdges: paperEdges,
			Nodes:      n,
			Cfg: GenConfig{
				Nodes:    n,
				Degree:   deg,
				Weighted: weighted,
				Weight:   SSSPWeight,
				Seed:     seed,
			},
		}
	}
	fit := func(base LogNormalParams, nodes int, edges int64) LogNormalParams {
		return base.WithMean(float64(edges) / float64(nodes))
	}
	return []Dataset{
		// Table 1: SSSP (weighted).
		mk("dblp", 1, 310556, 1518617, fit(LogNormalParams{Sigma: 1.0}, 310556, 1518617), true, 101),
		mk("facebook", 1, 1204004, 5430303, fit(LogNormalParams{Sigma: 1.0}, 1204004, 5430303), true, 102),
		mk("sssp-s", 1, 1000000, 7868140, SSSPDegree, true, 103),
		mk("sssp-m", 1, 10000000, 78873968, SSSPDegree, true, 104),
		mk("sssp-l", 1, 50000000, 369455293, SSSPDegree, true, 105),
		// Table 2: PageRank (unweighted).
		mk("google", 2, 916417, 6078254, fit(LogNormalParams{Sigma: 2.0}, 916417, 6078254), false, 201),
		mk("berkstan", 2, 685230, 7600595, fit(LogNormalParams{Sigma: 2.0}, 685230, 7600595), false, 202),
		mk("pagerank-s", 2, 1000000, 7425360, PageRankDegree, false, 203),
		mk("pagerank-m", 2, 10000000, 75061501, PageRankDegree, false, 204),
		mk("pagerank-l", 2, 30000000, 224493620, PageRankDegree, false, 205),
	}
}

// ByName returns the catalog dataset with the given name at scale.
func ByName(name string, scale int) (Dataset, error) {
	for _, d := range Catalog(scale) {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// Build generates the dataset's graph.
func (d Dataset) Build() *Graph { return Generate(d.Cfg) }

package graph

import "imapreduce/internal/kv"

// Adj is a node's adjacency list as a kv record value: the static data
// of the graph algorithms. W is nil for unweighted graphs.
type Adj struct {
	Dst []int32
	W   []float32
}

// Bytes implements kv.Sized for traffic accounting: 4 bytes per target
// id plus 4 per weight, mirroring the serialized adjacency size.
func (a Adj) Bytes() int {
	n := 4 + 4*len(a.Dst)
	if a.W != nil {
		n += 4 * len(a.W)
	}
	return n
}

func init() {
	kv.RegisterWireType(Adj{})
	kv.RegisterValueCodec(Adj{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			a := v.(Adj)
			buf = kv.AppendInt32Slice(buf, a.Dst)
			return kv.AppendFloat32Slice(buf, a.W), true
		},
		Decode: func(data []byte) (any, int, error) {
			dst, n, err := kv.Int32SliceAt(data)
			if err != nil {
				return nil, 0, err
			}
			w, m, err := kv.Float32SliceAt(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return Adj{Dst: dst, W: w}, n + m, nil
		},
	})
}

// StaticPairs converts g to one kv record per node: key int64(u), value
// the node's adjacency list. This is the static-data file the engines
// load from DFS.
func StaticPairs(g *Graph) []kv.Pair {
	out := make([]kv.Pair, g.N)
	for u := 0; u < g.N; u++ {
		dst, w := g.Neighbors(int32(u))
		out[u] = kv.Pair{Key: int64(u), Value: Adj{Dst: dst, W: w}}
	}
	return out
}

// AdjOps is the kv.Ops for (int64 node id → Adj) records.
func AdjOps() kv.Ops { return kv.OpsFor[int64, Adj](Adj.Bytes) }

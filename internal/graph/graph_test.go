package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderCSR(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(0, 2, 2.5)
	b.AddEdge(2, 3, 0.5)
	b.AddEdge(3, 0, 4.0)
	g := b.Build()
	if g.N != 4 || g.Edges() != 4 || !g.Weighted() {
		t.Fatalf("bad graph: N=%d E=%d", g.N, g.Edges())
	}
	dst, w := g.Neighbors(0)
	if len(dst) != 2 || dst[0] != 1 || dst[1] != 2 || w[0] != 1.5 || w[1] != 2.5 {
		t.Fatalf("node 0 adjacency wrong: %v %v", dst, w)
	}
	if g.OutDegree(1) != 0 {
		t.Fatalf("node 1 degree = %d", g.OutDegree(1))
	}
	dst, _ = g.Neighbors(3)
	if len(dst) != 1 || dst[0] != 0 {
		t.Fatalf("node 3 adjacency wrong: %v", dst)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, false).AddEdge(0, 5, 0)
}

func TestInDegrees(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 2, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 0, 0)
	g := b.Build()
	in := g.InDegrees()
	if in[0] != 1 || in[1] != 0 || in[2] != 2 {
		t.Fatalf("in-degrees: %v", in)
	}
}

func TestSortAdjacency(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 0, 20) // self edges allowed at the structure level
	g := b.Build()
	g.SortAdjacency()
	dst, w := g.Neighbors(0)
	if dst[0] != 0 || dst[1] != 1 || w[0] != 20 || w[1] != 10 {
		t.Fatalf("sort broke weight pairing: %v %v", dst, w)
	}
}

func TestGenerateProperties(t *testing.T) {
	g := Generate(GenConfig{Nodes: 2000, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 7})
	if g.N != 2000 {
		t.Fatalf("N = %d", g.N)
	}
	if !g.Weighted() {
		t.Fatal("expected weighted graph")
	}
	avg := float64(g.Edges()) / float64(g.N)
	// Log-normal(1.5, 1.0) mean is exp(2) ≈ 7.39; duplicates/self-loops
	// are dropped, so expect a bit under that.
	if avg < 4 || avg > 9 {
		t.Fatalf("average degree %.2f outside expected range", avg)
	}
	for u := int32(0); u < int32(g.N); u++ {
		dst, w := g.Neighbors(u)
		seen := map[int32]bool{}
		for i, v := range dst {
			if v == u {
				t.Fatalf("self loop at %d", u)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d->%d", u, v)
			}
			seen[v] = true
			if w[i] <= 0 {
				t.Fatalf("non-positive weight %f", w[i])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Nodes: 500, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 3}
	a, b := Generate(cfg), Generate(cfg)
	if a.Edges() != b.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Edges(), b.Edges())
	}
	for i := range a.Dst {
		if a.Dst[i] != b.Dst[i] || a.W[i] != b.W[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := Generate(GenConfig{Nodes: 500, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 4})
	if c.Edges() == a.Edges() {
		diff := false
		for i := range a.Dst {
			if a.Dst[i] != c.Dst[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateMaxDegreeCap(t *testing.T) {
	g := Generate(GenConfig{Nodes: 100, Degree: LogNormalParams{Sigma: 2, Mu: 3}, Seed: 1, MaxDegree: 5})
	for u := int32(0); u < int32(g.N); u++ {
		if g.OutDegree(u) > 5 {
			t.Fatalf("node %d degree %d exceeds cap", u, g.OutDegree(u))
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := SSSPDegree
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	got := sum / n
	if math.Abs(got-p.Mean())/p.Mean() > 0.1 {
		t.Fatalf("sample mean %.3f, analytic %.3f", got, p.Mean())
	}
}

func TestWithMean(t *testing.T) {
	f := func(m float64) bool {
		m = 1 + math.Mod(math.Abs(m), 50)
		p := LogNormalParams{Sigma: 1.3}.WithMean(m)
		return math.Abs(p.Mean()-m) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog(DefaultScale)
	if len(cat) != 10 {
		t.Fatalf("catalog has %d datasets, want 10", len(cat))
	}
	names := map[string]bool{}
	for _, d := range cat {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if d.Nodes <= 0 || d.Nodes > d.PaperNodes {
			t.Fatalf("%s: bad scaled node count %d", d.Name, d.Nodes)
		}
		if d.Table == 1 && !d.Cfg.Weighted {
			t.Fatalf("%s: SSSP dataset must be weighted", d.Name)
		}
		if d.Table == 2 && d.Cfg.Weighted {
			t.Fatalf("%s: PageRank dataset must be unweighted", d.Name)
		}
	}
	if _, err := ByName("dblp", DefaultScale); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope", DefaultScale); err == nil {
		t.Fatal("expected error")
	}
}

func TestCatalogEdgeRatios(t *testing.T) {
	// Scaled datasets should roughly preserve the paper's edge/node
	// ratios, which is what the shuffle-volume experiments depend on.
	for _, d := range Catalog(1000) {
		g := d.Build()
		want := float64(d.PaperEdges) / float64(d.PaperNodes)
		got := float64(g.Edges()) / float64(g.N)
		if got < want*0.4 || got > want*1.6 {
			t.Errorf("%s: edge/node ratio %.2f, paper %.2f", d.Name, got, want)
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	for _, weighted := range []bool{true, false} {
		g := Generate(GenConfig{Nodes: 300, Degree: SSSPDegree, Weighted: weighted, Weight: SSSPWeight, Seed: 9})
		var buf bytes.Buffer
		if err := Save(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N != g.N || g2.Edges() != g.Edges() || g2.Weighted() != weighted {
			t.Fatalf("roundtrip changed shape: N %d->%d E %d->%d", g.N, g2.N, g.Edges(), g2.Edges())
		}
		for u := int32(0); u < int32(g.N); u++ {
			d1, w1 := g.Neighbors(u)
			d2, w2 := g2.Neighbors(u)
			if len(d1) != len(d2) {
				t.Fatalf("node %d degree changed", u)
			}
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("node %d edge %d changed", u, i)
				}
				if weighted && math.Abs(float64(w1[i]-w2[i])) > 1e-5 {
					t.Fatalf("node %d weight %d changed: %f vs %f", u, i, w1[i], w2[i])
				}
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",       // empty
		"x\t1 2", // bad id
		"0\t1:a", // bad weight
		"0\tfoo", // bad target
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewBufferString(c)); err == nil {
			t.Errorf("Load(%q) should fail", c)
		}
	}
}

func TestLoadIsolatedNodeLine(t *testing.T) {
	g, err := Load(bytes.NewBufferString("0\t1\n1\t\n2\t0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Edges() != 2 {
		t.Fatalf("N=%d E=%d", g.N, g.Edges())
	}
}

func TestStaticPairs(t *testing.T) {
	g := Generate(GenConfig{Nodes: 50, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 5})
	pairs := StaticPairs(g)
	if len(pairs) != g.N {
		t.Fatalf("got %d pairs", len(pairs))
	}
	total := int64(0)
	for i, p := range pairs {
		if p.Key.(int64) != int64(i) {
			t.Fatalf("pair %d has key %v", i, p.Key)
		}
		adj := p.Value.(Adj)
		total += int64(len(adj.Dst))
		if adj.Bytes() != 4+8*len(adj.Dst) {
			t.Fatalf("Adj.Bytes wrong for weighted: %d", adj.Bytes())
		}
	}
	if total != g.Edges() {
		t.Fatalf("edges in pairs %d != %d", total, g.Edges())
	}
	// Unweighted sizes.
	a := Adj{Dst: []int32{1, 2}}
	if a.Bytes() != 12 {
		t.Fatalf("unweighted Adj.Bytes = %d", a.Bytes())
	}
}

func TestStatsOf(t *testing.T) {
	g := Generate(GenConfig{Nodes: 100, Degree: SSSPDegree, Weighted: true, Weight: SSSPWeight, Seed: 2})
	st := g.StatsOf()
	if st.Nodes != 100 || st.Edges != g.Edges() || st.EstBytes <= st.Edges {
		t.Fatalf("stats: %+v", st)
	}
}

// Package imapreduce_test holds the benchmark harness: one benchmark per
// paper table and figure (delegating to internal/experiments) plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package imapreduce_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/experiments"
	"imapreduce/internal/graph"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// benchFigure runs one experiment per benchmark iteration at the Quick
// configuration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	benchFigureOn(b, id, "")
}

// benchFigureOn runs one experiment per benchmark iteration at the Quick
// configuration over the named transport backend.
func benchFigureOn(b *testing.B, id, transport string) {
	b.Helper()
	run, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Quick()
	cfg.Transport = transport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)        { benchFigure(b, "table1") }
func BenchmarkTable2Datasets(b *testing.B)        { benchFigure(b, "table2") }
func BenchmarkFig04SSSPDBLP(b *testing.B)         { benchFigure(b, "fig04") }
func BenchmarkFig05SSSPFacebook(b *testing.B)     { benchFigure(b, "fig05") }
func BenchmarkFig06PageRankGoogle(b *testing.B)   { benchFigure(b, "fig06") }
func BenchmarkFig07PageRankBerkStan(b *testing.B) { benchFigure(b, "fig07") }
func BenchmarkFig08SSSPSynthetic(b *testing.B)    { benchFigure(b, "fig08") }
func BenchmarkFig09PageRankSynthetic(b *testing.B) {
	benchFigure(b, "fig09")
}
func BenchmarkFig10Factors(b *testing.B)            { benchFigure(b, "fig10") }
func BenchmarkFig11CommCost(b *testing.B)           { benchFigure(b, "fig11") }
func BenchmarkFig12SSSPScaling(b *testing.B)        { benchFigure(b, "fig12") }
func BenchmarkFig13PageRankScaling(b *testing.B)    { benchFigure(b, "fig13") }
func BenchmarkFig14ParallelEfficiency(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig16KMeans(b *testing.B)             { benchFigure(b, "fig16") }
func BenchmarkFig18MatrixPower(b *testing.B)        { benchFigure(b, "fig18") }
func BenchmarkFig20KMeansConvergence(b *testing.B)  { benchFigure(b, "fig20") }

// TCP-backend variants of the local-cluster figures: the same workloads
// with every state and shuffle chunk crossing real loopback sockets, so
// the wire codec and framing costs are on the measured path.
func BenchmarkFig06PageRankGoogleTCP(b *testing.B) { benchFigureOn(b, "fig06", "tcp") }
func BenchmarkFig04SSSPDBLPTCP(b *testing.B)       { benchFigureOn(b, "fig04", "tcp") }

// --- Ablation benchmarks -------------------------------------------------

// benchEnv builds a fresh cluster for an ablation run.
func benchEnv(b *testing.B, spec cluster.Spec, net transport.Network) (*core.Engine, *dfs.DFS) {
	b.Helper()
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 18, Replication: 2}, spec.IDs(), m)
	eng, err := core.NewEngine(fs, net, spec, m, core.Options{Timeout: 2 * time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	return eng, fs
}

func benchGraph() *graph.Graph {
	return graph.Generate(graph.GenConfig{
		Nodes: 4000, Degree: graph.PageRankDegree, Seed: 77,
	})
}

// BenchmarkAblationBufferThreshold isolates §3.3's send-buffer design:
// eager per-record triggering (threshold 1) vs buffered flushing.
func BenchmarkAblationBufferThreshold(b *testing.B) {
	g := benchGraph()
	for _, thresh := range []int{1, 16, 512, 8192} {
		b.Run(fmt.Sprintf("buf=%d", thresh), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, fs := benchEnv(b, cluster.Uniform(3), transport.NewChanNetwork())
				if err := pagerank.WriteInputs(fs, "worker-0", g, "/s", "/st"); err != nil {
					b.Fatal(err)
				}
				job := pagerank.IMRJob(pagerank.IMRConfig{
					Name: "ab-buf", Nodes: g.N, StaticPath: "/s", StatePath: "/st", MaxIter: 5,
				})
				job.BufferThreshold = thresh
				b.StartTimer()
				if _, err := eng.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckpointInterval isolates §3.4.1's checkpoint
// frequency: every iteration vs every five vs never.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	g := graph.Generate(graph.GenConfig{
		Nodes: 3000, Degree: graph.SSSPDegree, Weighted: true, Weight: graph.SSSPWeight, Seed: 78,
	})
	for _, every := range []int{0, 1, 5} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, fs := benchEnv(b, cluster.Uniform(3), transport.NewChanNetwork())
				if err := sssp.WriteInputs(fs, "worker-0", g, 0, "/s", "/st"); err != nil {
					b.Fatal(err)
				}
				job := sssp.IMRJob(sssp.IMRConfig{
					Name: "ab-ckpt", StaticPath: "/s", StatePath: "/st",
					MaxIter: 8, Checkpoint: every,
				})
				b.StartTimer()
				if _, err := eng.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLoadBalancing isolates §3.4.2 on a cluster with one
// 10x-slow worker.
func BenchmarkAblationLoadBalancing(b *testing.B) {
	g := benchGraph()
	for _, lb := range []bool{false, true} {
		b.Run(fmt.Sprintf("lb=%v", lb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				spec := cluster.Heterogeneous([]float64{1, 0.1, 1, 1})
				m := metrics.NewSet()
				fs := dfs.New(dfs.Config{BlockSize: 1 << 18, Replication: 2}, spec.IDs(), m)
				eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m,
					core.Options{Timeout: 2 * time.Minute, LoadBalance: lb, LBThreshold: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				if err := pagerank.WriteInputs(fs, "worker-0", g, "/s", "/st"); err != nil {
					b.Fatal(err)
				}
				// Enough iterations that one migration (plus its
				// rollback) amortizes against the 10x-slow worker.
				job := pagerank.IMRJob(pagerank.IMRConfig{
					Name: "ab-lb", Nodes: g.N, StaticPath: "/s", StatePath: "/st",
					MaxIter: 25, Checkpoint: 2,
				})
				b.StartTimer()
				if _, err := eng.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLocality isolates the baseline's locality-aware split
// scheduling.
func BenchmarkAblationLocality(b *testing.B) {
	g := benchGraph()
	for _, local := range []bool{false, true} {
		b.Run(fmt.Sprintf("locality=%v", local), func(b *testing.B) {
			var remote int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				spec := cluster.Uniform(4)
				m := metrics.NewSet()
				fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 1}, spec.IDs(), m)
				eng, err := mapreduce.NewEngine(fs, spec, m, mapreduce.Options{LocalityAware: local})
				if err != nil {
					b.Fatal(err)
				}
				if err := fs.WriteFile("/in", "worker-0", pagerank.CombinedPairs(g), pagerank.CombinedOps()); err != nil {
					b.Fatal(err)
				}
				spec2 := pagerank.MRSpec("ab-loc", "/in", "/work", g.N, 4, 3, 0)
				b.StartTimer()
				if _, err := mapreduce.RunIterativeCtx(context.Background(), eng, spec2); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				remote += m.Get(metrics.DFSReadRemote)
				b.StartTimer()
			}
			b.ReportMetric(float64(remote)/float64(b.N)/(1<<20), "remoteMB/op")
		})
	}
}

// BenchmarkAblationDiskDFS compares the in-memory DFS against the
// file-backed (gob spill) mode the paper's prototype uses.
func BenchmarkAblationDiskDFS(b *testing.B) {
	g := graph.Generate(graph.GenConfig{Nodes: 2000, Degree: graph.PageRankDegree, Seed: 81})
	for _, disk := range []bool{false, true} {
		b.Run(fmt.Sprintf("disk=%v", disk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := dfs.Config{BlockSize: 1 << 16, Replication: 2}
				if disk {
					cfg.SpillDir = b.TempDir()
				}
				spec := cluster.Uniform(3)
				m := metrics.NewSet()
				fs := dfs.New(cfg, spec.IDs(), m)
				eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{Timeout: 2 * time.Minute})
				if err != nil {
					b.Fatal(err)
				}
				if err := pagerank.WriteInputs(fs, "worker-0", g, "/s", "/st"); err != nil {
					b.Fatal(err)
				}
				job := pagerank.IMRJob(pagerank.IMRConfig{
					Name: "ab-disk", Nodes: g.N, StaticPath: "/s", StatePath: "/st",
					MaxIter: 5, Checkpoint: 2,
				})
				b.StartTimer()
				if _, err := eng.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTransport compares in-process channels against real
// TCP sockets for the same job.
func BenchmarkAblationTransport(b *testing.B) {
	g := graph.Generate(graph.GenConfig{Nodes: 1500, Degree: graph.PageRankDegree, Seed: 79})
	nets := map[string]func() transport.Network{
		"chan": func() transport.Network { return transport.NewChanNetwork() },
		"tcp":  func() transport.Network { return transport.NewTCPNetwork() },
	}
	for name, mk := range nets {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, fs := benchEnv(b, cluster.Uniform(2), mk())
				if err := pagerank.WriteInputs(fs, "worker-0", g, "/s", "/st"); err != nil {
					b.Fatal(err)
				}
				job := pagerank.IMRJob(pagerank.IMRConfig{
					Name: "ab-net", Nodes: g.N, StaticPath: "/s", StatePath: "/st", MaxIter: 4,
				})
				b.StartTimer()
				if _, err := eng.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNetworkLatency measures sensitivity to per-message
// network latency: persistent connections amortize it, but the
// maps→reduce barrier still pays it once per iteration.
func BenchmarkAblationNetworkLatency(b *testing.B) {
	g := graph.Generate(graph.GenConfig{Nodes: 1500, Degree: graph.PageRankDegree, Seed: 82})
	for _, lat := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var net transport.Network = transport.NewChanNetwork()
				if lat > 0 {
					net = transport.NewLatencyNetwork(net, lat, 0)
				}
				eng, fs := benchEnv(b, cluster.Uniform(2), net)
				if err := pagerank.WriteInputs(fs, "worker-0", g, "/s", "/st"); err != nil {
					b.Fatal(err)
				}
				job := pagerank.IMRJob(pagerank.IMRConfig{
					Name: "ab-lat", Nodes: g.N, StaticPath: "/s", StatePath: "/st", MaxIter: 5,
				})
				b.StartTimer()
				if _, err := eng.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineThroughputPageRank measures raw records/second through
// the iMapReduce engine.
func BenchmarkEngineThroughputPageRank(b *testing.B) {
	g := graph.Generate(graph.GenConfig{Nodes: 20000, Degree: graph.PageRankDegree, Seed: 80})
	const iters = 3
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, fs := benchEnv(b, cluster.Uniform(4), transport.NewChanNetwork())
		if err := pagerank.WriteInputs(fs, "worker-0", g, "/s", "/st"); err != nil {
			b.Fatal(err)
		}
		job := pagerank.IMRJob(pagerank.IMRConfig{
			Name: "throughput", Nodes: g.N, StaticPath: "/s", StatePath: "/st", MaxIter: iters,
		})
		b.StartTimer()
		if _, err := eng.Run(job); err != nil {
			b.Fatal(err)
		}
	}
	recs := float64(g.N+int(g.Edges())) * iters
	b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
